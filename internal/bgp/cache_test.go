package bgp

import (
	"testing"

	"spooftrack/internal/metrics"
)

// distinctConfigs returns n routing-distinct configurations (prepend
// ladder on one link).
func distinctConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = Config{Anns: []Announcement{{Link: 0, Prepend: i}}}
	}
	return cfgs
}

// TestOutcomeCacheCapHolds fills a small-capacity cache past its bound
// and checks the cap holds, LRU order decides the victims, and the
// eviction counter (internal and instrumented) advances.
func TestOutcomeCacheCapHolds(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(4)
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("bgp_outcome_cache_requests_total", "result")
	cache.Instrument(vec)

	cfgs := distinctConfigs(10)
	for _, cfg := range cfgs {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
		if cache.Len() > 4 {
			t.Fatalf("cache grew to %d entries, cap is 4", cache.Len())
		}
	}
	st := cache.StatsSnapshot()
	if st.Size != 4 || st.Capacity != 4 {
		t.Fatalf("size=%d capacity=%d, want 4/4", st.Size, st.Capacity)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions=%d, want 6", st.Evictions)
	}
	if got := vec.With("eviction").Value(); got != 6 {
		t.Fatalf("instrumented eviction counter=%d, want 6", got)
	}

	// The last 4 configs must still be resident (hits), the first 6 gone.
	h0, m0 := cache.Stats()
	for _, cfg := range cfgs[6:] {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := cache.Stats()
	if h1-h0 != 4 || m1 != m0 {
		t.Fatalf("resident tail: %d hits %d new misses, want 4 hits 0 misses", h1-h0, m1-m0)
	}
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, m2 := cache.Stats(); m2 != m1+1 {
		t.Fatal("evicted head config should miss")
	}
}

// TestOutcomeCacheLRUTouch checks that a hit refreshes recency: touched
// entries survive an insert wave that evicts untouched ones.
func TestOutcomeCacheLRUTouch(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(3)
	cfgs := distinctConfigs(5)
	for _, cfg := range cfgs[:3] {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Touch cfg[0], making cfg[1] the LRU victim of the next insert.
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Propagate(e, cfgs[3]); err != nil {
		t.Fatal(err)
	}
	_, m0 := cache.Stats()
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != m0 {
		t.Fatal("touched entry was evicted")
	}
	if _, err := cache.Propagate(e, cfgs[1]); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != m0+1 {
		t.Fatal("untouched entry should have been the eviction victim")
	}
}

// TestOutcomeCacheSetCapacity shrinks a populated cache and checks the
// overflow is evicted immediately; capacity 0 lifts the bound.
func TestOutcomeCacheSetCapacity(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(0)
	for _, cfg := range distinctConfigs(8) {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 8 {
		t.Fatalf("unbounded cache holds %d, want 8", cache.Len())
	}
	cache.SetCapacity(2)
	if cache.Len() != 2 {
		t.Fatalf("after shrink cache holds %d, want 2", cache.Len())
	}
	if st := cache.StatsSnapshot(); st.Evictions != 6 {
		t.Fatalf("evictions=%d, want 6", st.Evictions)
	}
}

// TestOutcomeCacheDeltaSeeding checks that consecutive misses ride the
// delta path off the previous outcome and still produce the same
// pointer-stable, byte-identical outcomes as direct propagation.
func TestOutcomeCacheDeltaSeeding(t *testing.T) {
	g, o := worldForTest(t, 13, 900)
	e := newEngine(t, g, o, DefaultParams(13))
	cache := NewOutcomeCache()
	for i, cfg := range distinctConfigs(6) {
		got, err := cache.Propagate(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Propagate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.converged {
			t.Fatalf("config %d: cached outcome not converged", i)
		}
		for j := range want.sel {
			if got.sel[j] != want.sel[j] {
				t.Fatalf("config %d: AS %d selection %+v, direct %+v", i, j, got.sel[j], want.sel[j])
			}
		}
	}
}
