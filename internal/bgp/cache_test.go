package bgp

import (
	"testing"

	"spooftrack/internal/metrics"
)

// distinctConfigs returns n routing-distinct configurations (prepend
// ladder on one link).
func distinctConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = Config{Anns: []Announcement{{Link: 0, Prepend: i}}}
	}
	return cfgs
}

// TestOutcomeCacheCapHolds fills a small-capacity cache past its bound
// and checks the cap holds, LRU order decides the victims, and the
// eviction counter (internal and instrumented) advances.
func TestOutcomeCacheCapHolds(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(4)
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("bgp_outcome_cache_requests_total", "result")
	cache.Instrument(vec)

	cfgs := distinctConfigs(10)
	for _, cfg := range cfgs {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
		if cache.Len() > 4 {
			t.Fatalf("cache grew to %d entries, cap is 4", cache.Len())
		}
	}
	st := cache.StatsSnapshot()
	if st.Size != 4 || st.Capacity != 4 {
		t.Fatalf("size=%d capacity=%d, want 4/4", st.Size, st.Capacity)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions=%d, want 6", st.Evictions)
	}
	if got := vec.With("eviction").Value(); got != 6 {
		t.Fatalf("instrumented eviction counter=%d, want 6", got)
	}

	// The last 4 configs must still be resident (hits), the first 6 gone.
	h0, m0 := cache.Stats()
	for _, cfg := range cfgs[6:] {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := cache.Stats()
	if h1-h0 != 4 || m1 != m0 {
		t.Fatalf("resident tail: %d hits %d new misses, want 4 hits 0 misses", h1-h0, m1-m0)
	}
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, m2 := cache.Stats(); m2 != m1+1 {
		t.Fatal("evicted head config should miss")
	}
}

// TestOutcomeCacheLRUTouch checks that a hit refreshes recency: touched
// entries survive an insert wave that evicts untouched ones.
func TestOutcomeCacheLRUTouch(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(3)
	cfgs := distinctConfigs(5)
	for _, cfg := range cfgs[:3] {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Touch cfg[0], making cfg[1] the LRU victim of the next insert.
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Propagate(e, cfgs[3]); err != nil {
		t.Fatal(err)
	}
	_, m0 := cache.Stats()
	if _, err := cache.Propagate(e, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != m0 {
		t.Fatal("touched entry was evicted")
	}
	if _, err := cache.Propagate(e, cfgs[1]); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != m0+1 {
		t.Fatal("untouched entry should have been the eviction victim")
	}
}

// TestOutcomeCacheSetCapacity shrinks a populated cache and checks the
// overflow is evicted immediately; capacity 0 lifts the bound.
func TestOutcomeCacheSetCapacity(t *testing.T) {
	g, o := worldForTest(t, 9, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCacheCap(0)
	for _, cfg := range distinctConfigs(8) {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 8 {
		t.Fatalf("unbounded cache holds %d, want 8", cache.Len())
	}
	cache.SetCapacity(2)
	if cache.Len() != 2 {
		t.Fatalf("after shrink cache holds %d, want 2", cache.Len())
	}
	if st := cache.StatsSnapshot(); st.Evictions != 6 {
		t.Fatalf("evictions=%d, want 6", st.Evictions)
	}
}

// TestOutcomeCacheDeltaSeeding checks that consecutive misses ride the
// delta path off the previous outcome and still produce the same
// pointer-stable, byte-identical outcomes as direct propagation.
func TestOutcomeCacheDeltaSeeding(t *testing.T) {
	g, o := worldForTest(t, 13, 900)
	e := newEngine(t, g, o, DefaultParams(13))
	cache := NewOutcomeCache()
	for i, cfg := range distinctConfigs(6) {
		got, err := cache.Propagate(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Propagate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.converged {
			t.Fatalf("config %d: cached outcome not converged", i)
		}
		for j := range want.sel {
			if got.sel[j] != want.sel[j] {
				t.Fatalf("config %d: AS %d selection %+v, direct %+v", i, j, got.sel[j], want.sel[j])
			}
		}
	}
}

// TestOutcomeCacheSeedWindow is the white-box contract of the delta-
// seed window: recently resolved outcomes accumulate newest-first,
// re-resolution moves to front instead of duplicating, and the window
// never outgrows DefaultDeltaSeedWindow.
func TestOutcomeCacheSeedWindow(t *testing.T) {
	g, o := worldForTest(t, 17, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCache()
	cfgs := distinctConfigs(DefaultDeltaSeedWindow + 2)
	var outs []*Outcome
	for _, cfg := range cfgs {
		out, err := cache.Propagate(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	cache.mu.Lock()
	recent := append([]*Outcome(nil), cache.recent...)
	cache.mu.Unlock()
	if len(recent) != DefaultDeltaSeedWindow {
		t.Fatalf("window holds %d outcomes, want %d", len(recent), DefaultDeltaSeedWindow)
	}
	for i := 0; i < DefaultDeltaSeedWindow; i++ {
		if want := outs[len(outs)-1-i]; recent[i] != want {
			t.Fatalf("window[%d] is not the %d-th most recent outcome", i, i)
		}
	}
	// A hit on an older resident moves it to the front without growing
	// the window.
	if _, err := cache.Propagate(e, cfgs[2]); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	front, size := cache.recent[0], len(cache.recent)
	cache.mu.Unlock()
	if front != outs[2] || size != DefaultDeltaSeedWindow {
		t.Fatalf("re-resolution did not move-to-front dedupe (front=%p want=%p size=%d)", front, outs[2], size)
	}
}

// TestOutcomeCachePickSeedNearest checks the window seed choice is by
// announcement diff, not recency: when a scoring loop interleaves two
// configuration families, a miss near family A must seed from A even
// if family B resolved more recently.
func TestOutcomeCachePickSeedNearest(t *testing.T) {
	g, o := worldForTest(t, 19, 600)
	e := newEngine(t, g, o, noiseless())
	cache := NewOutcomeCache()
	famA := Config{Anns: []Announcement{{Link: 0, Prepend: 1}}}
	famB := Config{Anns: []Announcement{{Link: 1, Prepend: 3}, {Link: 2, Prepend: 4}, {Link: 3, Prepend: 5}}}
	outA, err := cache.Propagate(e, famA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Propagate(e, famB); err != nil {
		t.Fatal(err)
	}
	// One announcement away from famA, far from the more recent famB.
	cfg := Config{Anns: []Announcement{{Link: 0, Prepend: 2}}}
	cache.mu.Lock()
	seed := cache.pickSeed(cfg)
	cache.mu.Unlock()
	if seed != outA {
		t.Fatalf("pickSeed chose %q, want famA %q", seed.Config().Key(), famA.Key())
	}
}

// TestOutcomeCacheDeltaModeStats checks the miss split: the first miss
// has no seed (full, DeltaFullNoPrev) and subsequent near-identical
// misses ride the incremental path, with DeltaIncremental + DeltaFull
// always equal to Misses.
func TestOutcomeCacheDeltaModeStats(t *testing.T) {
	g, o := worldForTest(t, 42, 1500)
	e := newEngine(t, g, o, DefaultParams(42))
	cache := NewOutcomeCache()
	base := allLinksConfig(7)
	// Single-field edits of a full-anycast base keep the affected
	// frontier small, so the second and later misses seed from the
	// window and ride the incremental path.
	configs := []Config{base}
	for i := 2; i <= 5; i++ {
		mut := cloneConfig(base)
		mut.Anns[3].Prepend = i
		configs = append(configs, mut)
	}
	for _, cfg := range configs {
		if _, err := cache.Propagate(e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.StatsSnapshot()
	if st.Misses != 5 {
		t.Fatalf("misses = %d, want 5", st.Misses)
	}
	if st.DeltaIncremental+st.DeltaFull != st.Misses {
		t.Fatalf("delta split %d+%d does not account for %d misses",
			st.DeltaIncremental, st.DeltaFull, st.Misses)
	}
	if st.DeltaFull == 0 {
		t.Fatal("first miss had no seed and must count as a full propagation")
	}
	if st.DeltaIncremental == 0 {
		t.Fatal("single-field prepend edits must ride the incremental path")
	}
}
