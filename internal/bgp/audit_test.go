package bgp

import "testing"

func TestAuditNoiselessFullCompliance(t *testing.T) {
	g, o := worldForTest(t, 60, 1000)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, allLinksConfig(7))
	audit := e.Audit(out)
	if audit.FracBestRel() != 1.0 {
		t.Fatalf("best-relationship compliance %.4f, want 1.0 without noise", audit.FracBestRel())
	}
	if audit.FracGaoRexford() != 1.0 {
		t.Fatalf("Gao-Rexford compliance %.4f, want 1.0 without noise", audit.FracGaoRexford())
	}
	evaluated := 0
	for _, ev := range audit.Evaluated {
		if ev {
			evaluated++
		}
	}
	// Single-homed stubs have no decision to audit; multihomed ASes and
	// transit networks (roughly 40% of the default topology) do.
	if evaluated < g.NumASes()/3 {
		t.Fatalf("only %d ASes evaluated", evaluated)
	}
}

func TestAuditDetectsPolicyNoise(t *testing.T) {
	g, o := worldForTest(t, 61, 1000)
	p := DefaultParams(61)
	p.PolicyNoiseFrac = 0.3 // heavy noise so deviation is visible
	e := newEngine(t, g, o, p)
	out := propagate(t, e, allLinksConfig(7))
	audit := e.Audit(out)
	if audit.FracBestRel() >= 1.0 {
		t.Fatal("noisy engine reported full best-relationship compliance")
	}
	if audit.FracGaoRexford() > audit.FracBestRel() {
		t.Fatal("Gao-Rexford compliance cannot exceed best-relationship compliance")
	}
	// Still, the majority complies (noise is bounded).
	if audit.FracBestRel() < 0.5 {
		t.Fatalf("compliance %.3f implausibly low", audit.FracBestRel())
	}
}

func TestAuditFracEmpty(t *testing.T) {
	a := &PolicyAudit{Evaluated: []bool{false}, BestRel: []bool{false}, GaoRexford: []bool{false}}
	if a.FracBestRel() != 0 || a.FracGaoRexford() != 0 {
		t.Fatal("empty audit should report zero fractions")
	}
}
