package bgp

import (
	"fmt"

	"spooftrack/internal/topo"
)

// BGP action communities (§VIII future work: "using BGP communities for
// controlling export policies (and influence routing decisions) on
// remote networks"). Many transit providers let customers tag routes
// with provider-defined communities that alter export behaviour — most
// commonly "do not export this route to neighbor X". Unlike poisoning,
// this does not rely on loop prevention (so poison-ignoring ASes are
// still steerable) and does not trip route-leak filters; unlike
// poisoning it only works at providers that implement action
// communities.

// CommunityAction is the operation a community requests.
type CommunityAction uint8

const (
	// ActNoExportTo asks the operator AS not to export the route to a
	// specific neighbor.
	ActNoExportTo CommunityAction = 1
	// ActPrependTo asks the operator AS to prepend its own ASN three
	// times when exporting to a specific neighbor (remote prepending).
	ActPrependTo CommunityAction = 2
)

// remotePrependDepth is how many ASNs ActPrependTo adds at the operator.
const remotePrependDepth = 3

// String names the action.
func (a CommunityAction) String() string {
	switch a {
	case ActNoExportTo:
		return "no-export-to"
	case ActPrependTo:
		return "prepend-to"
	default:
		return fmt.Sprintf("CommunityAction(%d)", uint8(a))
	}
}

// Community is one action community attached to an announcement:
// "operator, when handling this route, apply action toward target".
type Community struct {
	// Operator is the AS expected to act on the community.
	Operator topo.ASN
	// Action is the requested operation.
	Action CommunityAction
	// Target is the operator's neighbor the action applies to.
	Target topo.ASN
}

// String renders the community like provider documentation does.
func (c Community) String() string {
	return fmt.Sprintf("%d:%s:%d", c.Operator, c.Action, c.Target)
}

// communityTables precomputes, per announcement, the (operator, target)
// pairs for each action. The zero value (nil maps) is valid and means no
// announcement carries communities; the propagation hot path checks
// active() once per offer and skips all community lookups for the common
// community-free configuration.
type communityTables struct {
	noExport map[int]map[[2]topo.ASN]bool
	prepend  map[int]map[[2]topo.ASN]bool
}

// active reports whether any community table was built.
func (t communityTables) active() bool { return t.noExport != nil || t.prepend != nil }

func buildCommunityTables(cfg Config) communityTables {
	t := communityTables{
		noExport: make(map[int]map[[2]topo.ASN]bool),
		prepend:  make(map[int]map[[2]topo.ASN]bool),
	}
	for ai, a := range cfg.Anns {
		for _, c := range a.Communities {
			var dst map[int]map[[2]topo.ASN]bool
			switch c.Action {
			case ActNoExportTo:
				dst = t.noExport
			case ActPrependTo:
				dst = t.prepend
			default:
				continue
			}
			m, ok := dst[ai]
			if !ok {
				m = make(map[[2]topo.ASN]bool)
				dst[ai] = m
			}
			m[[2]topo.ASN{c.Operator, c.Target}] = true
		}
	}
	return t
}

// has reports whether announcement ai carries the action for
// (operator, target).
func hasCommunity(m map[int]map[[2]topo.ASN]bool, ai int, operator, target topo.ASN) bool {
	inner, ok := m[ai]
	if !ok {
		return false
	}
	return inner[[2]topo.ASN{operator, target}]
}
