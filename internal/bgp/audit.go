package bgp

import "spooftrack/internal/topo"

// PolicyAudit reports, for one converged outcome, which ASes' route
// selections comply with the textbook BGP decision criteria the paper
// audits in Fig. 9: (i) best relationship — preferring customer routes
// over peer routes over provider routes; and (ii) shortest path — among
// equally preferred routes, choosing a shortest one. ASes following both
// comply with the Gao-Rexford model.
type PolicyAudit struct {
	// Evaluated[i] is true for ASes with a route and at least one
	// alternative to compare against.
	Evaluated []bool
	// BestRel[i] is true when i's selection has the best available
	// relationship class.
	BestRel []bool
	// GaoRexford[i] is true when i's selection has the best class AND a
	// shortest path within that class.
	GaoRexford []bool
}

// FracBestRel returns the fraction of evaluated ASes complying with the
// best-relationship criterion.
func (a *PolicyAudit) FracBestRel() float64 { return a.frac(a.BestRel) }

// FracGaoRexford returns the fraction of evaluated ASes complying with
// both criteria.
func (a *PolicyAudit) FracGaoRexford() float64 { return a.frac(a.GaoRexford) }

func (a *PolicyAudit) frac(flags []bool) float64 {
	n, hit := 0, 0
	for i, ev := range a.Evaluated {
		if !ev {
			continue
		}
		n++
		if flags[i] {
			hit++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hit) / float64(n)
}

// Audit evaluates every AS's converged selection against the offers its
// neighbors export to it in the outcome's final state, classifying
// compliance with the best-relationship and shortest-path criteria. The
// paper performs this audit on observed AS-paths; with the simulator we
// audit the converged state directly, which measures the same property
// without path-inference error.
func (e *Engine) Audit(out *Outcome) *PolicyAudit {
	n := e.g.NumASes()
	audit := &PolicyAudit{
		Evaluated:  make([]bool, n),
		BestRel:    make([]bool, n),
		GaoRexford: make([]bool, n),
	}
	cfg := out.cfg
	scratch := e.getScratch()
	defer e.putScratch(scratch, cfg)
	e.buildCtx(scratch, cfg)
	// The export-class checks below read the classes the outcome's
	// propagation computed and persisted; alias them (read-only — the
	// outcome is immutable, and putScratch drops the alias).
	scratch.sendClass = out.sendCls
	for i := 0; i < n; i++ {
		s := out.sel[i]
		if s.class == classInvalid {
			continue
		}
		scratch.epoch++
		t1Filter := e.params.Tier1PoisonFilter && e.g.IsTier1(i)
		// Gather all valid offers in the converged state, with true
		// (un-pinned) classes.
		type offer struct {
			class int8
			len   int32
		}
		var offers []offer
		for ai := range cfg.Anns {
			if e.origin.Links[cfg.Anns[ai].Link].Provider != i {
				continue
			}
			if row := scratch.ctx.poisoned[ai]; row != nil && row[i] && !e.ignorePoison[i] {
				continue
			}
			offers = append(offers, offer{class: classCustomer, len: int32(cfg.Anns[ai].PathLen())})
		}
		for _, nb := range e.g.Neighbors(i) {
			sn := out.sel[nb.Idx]
			if sn.class == classInvalid {
				continue
			}
			// Valley-free export filter (offerFrom's precondition): the
			// sender only exports non-customer routes to its customers.
			if scratch.sendClass[nb.Idx] != classCustomer && nb.Rel != topo.RelProvider {
				continue
			}
			cand, ok := e.offerFrom(out.sel, sn, nb, i, scratch, t1Filter)
			if !ok {
				continue
			}
			offers = append(offers, offer{class: cand.class, len: cand.pathLen})
		}
		if len(offers) < 2 {
			// With at most one offer there is no decision to audit.
			continue
		}
		audit.Evaluated[i] = true
		chosenClass := e.trueClass(i, s)
		bestClass := int8(127)
		for _, o := range offers {
			if o.class < bestClass {
				bestClass = o.class
			}
		}
		if chosenClass != bestClass {
			continue
		}
		audit.BestRel[i] = true
		shortest := int32(1 << 30)
		for _, o := range offers {
			if o.class == bestClass && o.len < shortest {
				shortest = o.len
			}
		}
		if s.pathLen <= shortest {
			audit.GaoRexford[i] = true
		}
	}
	return audit
}
