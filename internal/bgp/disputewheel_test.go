package bgp

import (
	"testing"

	"spooftrack/internal/topo"
)

// badGadget builds the classic dispute-wheel topology: three ASes in a
// provider cycle, each preferring the route through its clockwise
// neighbor (via a pinned LocalPref override) over its direct origin
// route. In Griffin's path-filtered BAD GADGET no stable routing exists;
// under this engine's next-hop preferences the wheel instead settles
// into a "spiral" — one AS is loop-blocked from its preferred neighbor
// and anchors the cycle on its direct route — after churning the queue
// through repeated re-announcements, exactly the workload where the old
// reslice-FIFO's backing array crept forward.
func badGadget(t testing.TB) (*Engine, Config) {
	b := topo.NewBuilder()
	if err := b.AddP2C(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddP2C(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddP2C(1, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Freeze()
	links := []Link{
		{Name: "l1", Provider: g.MustIndex(1)},
		{Name: "l2", Provider: g.MustIndex(2)},
		{Name: "l3", Provider: g.MustIndex(3)},
	}
	e, err := NewEngine(g, Origin{ASN: 47065, Links: links}, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Each AS pins the neighbor it buys transit from: AS1 prefers routes
	// via AS2, AS2 via AS3, AS3 via AS1 — a cyclic preference no stable
	// assignment satisfies.
	e.pinned[g.MustIndex(1)] = g.MustIndex(2)
	e.pinned[g.MustIndex(2)] = g.MustIndex(3)
	e.pinned[g.MustIndex(3)] = g.MustIndex(1)
	return e, allLinksConfig(3)
}

func TestDisputeWheelSpiralsToFixedPoint(t *testing.T) {
	e, cfg := badGadget(t)
	out, err := e.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.converged {
		t.Fatal("dispute wheel did not converge")
	}
	// Event ordering is semantically relevant here (which spiral wins
	// depends on processing order), so the outcome must match the
	// reference implementation event for event.
	ref, err := refPropagate(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spiral := 0
	for i := range out.sel {
		if out.sel[i] != ref.sel[i] {
			t.Fatalf("dispute-wheel state differs at AS %d: %+v vs %+v", i, out.sel[i], ref.sel[i])
		}
		if out.sel[i].class == classPinned {
			spiral++
		}
	}
	// The spiral: exactly two ASes ride their pinned neighbor; the third
	// is loop-blocked and anchors the wheel on its direct route.
	if spiral != 2 {
		t.Fatalf("%d ASes on pinned routes, want 2 (spiral fixed point)", spiral)
	}
	anchors := 0
	for i := range out.sel {
		if out.sel[i].nextHop == -1 {
			anchors++
		}
	}
	if anchors != 1 {
		t.Fatalf("%d direct anchors, want exactly 1", anchors)
	}
}

// TestDisputeWheelAllocsBounded proves the ring queue never grows: even
// a propagation that churns through the whole event budget performs only
// the Outcome's own array allocations (selections, runner-ups, export
// classes) once the scratch is pooled.
func TestDisputeWheelAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bound not meaningful")
	}
	e, cfg := badGadget(t)
	if _, err := e.Propagate(cfg); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Propagate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("budget-exhausting propagation allocated %.0f objects per run, want <= 2", allocs)
	}
}

// TestRingQueueWraps drives the scratch ring buffer across its capacity
// boundary and checks FIFO order survives the wrap.
func TestRingQueueWraps(t *testing.T) {
	const n = 5
	s := newPropScratch(n)
	push := func(i int) {
		if !s.queued[i] {
			s.queued[i] = true
			s.pushQueue(i)
		}
	}
	pop := func() int {
		i := s.popQueue()
		s.queued[i] = false
		return i
	}
	// Fill, half-drain, refill: forces qhead+qlen to wrap around.
	for i := 0; i < n; i++ {
		push(i)
	}
	for i := 0; i < 3; i++ {
		if got := pop(); got != i {
			t.Fatalf("pop %d, want %d", got, i)
		}
	}
	push(0)
	push(1) // land in wrapped positions
	want := []int{3, 4, 0, 1}
	for _, w := range want {
		if got := pop(); got != w {
			t.Fatalf("after wrap: pop %d, want %d", got, w)
		}
	}
	if s.qlen != 0 {
		t.Fatalf("queue not empty: qlen=%d", s.qlen)
	}
	// Duplicate suppression via the queued bitmap keeps pending entries
	// bounded by capacity.
	for k := 0; k < 3*n; k++ {
		push(k % n)
	}
	if s.qlen != n {
		t.Fatalf("qlen=%d after duplicate pushes, want %d", s.qlen, n)
	}
}
