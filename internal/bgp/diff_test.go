package bgp

import (
	"reflect"
	"testing"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

func ann(l LinkID, prepend int, poison []topo.ASN, comms []Community) Announcement {
	return Announcement{Link: l, Prepend: prepend, Poison: poison, Communities: comms}
}

func TestDiffConfigs(t *testing.T) {
	comm := Community{Operator: 100, Action: ActNoExportTo, Target: 200}
	comm2 := Community{Operator: 100, Action: ActPrependTo, Target: 200}
	cases := []struct {
		name       string
		prev, next Config
		same       bool
		identity   bool
		prevChange []AnnChange
		newChange  []AnnChange
		prevToNew  []int16
		lenShift   []int32
		touched    [][]topo.ASN
		numDirty   int
	}{
		{
			name:       "noop",
			prev:       Config{Anns: []Announcement{ann(0, 1, []topo.ASN{7}, nil), ann(2, 0, nil, []Community{comm})}},
			next:       Config{Anns: []Announcement{ann(0, 1, []topo.ASN{7}, nil), ann(2, 0, nil, []Community{comm})}},
			same:       true,
			identity:   true,
			prevChange: []AnnChange{AnnUnchanged, AnnUnchanged},
			newChange:  []AnnChange{AnnUnchanged, AnnUnchanged},
			prevToNew:  []int16{0, 1},
			lenShift:   []int32{0, 0},
			touched:    [][]topo.ASN{nil, nil},
		},
		{
			name:       "reordered",
			prev:       Config{Anns: []Announcement{ann(0, 0, nil, nil), ann(2, 0, nil, nil)}},
			next:       Config{Anns: []Announcement{ann(2, 0, nil, nil), ann(0, 0, nil, nil)}},
			same:       true,
			identity:   false,
			prevChange: []AnnChange{AnnUnchanged, AnnUnchanged},
			newChange:  []AnnChange{AnnUnchanged, AnnUnchanged},
			prevToNew:  []int16{1, 0},
			lenShift:   []int32{0, 0},
			touched:    [][]topo.ASN{nil, nil},
		},
		{
			name:       "announcement_added",
			prev:       Config{Anns: []Announcement{ann(0, 0, nil, nil)}},
			next:       Config{Anns: []Announcement{ann(0, 0, nil, nil), ann(3, 2, nil, nil)}},
			prevChange: []AnnChange{AnnUnchanged},
			newChange:  []AnnChange{AnnUnchanged, AnnAdded},
			prevToNew:  []int16{0},
			lenShift:   []int32{0},
			touched:    [][]topo.ASN{nil},
			numDirty:   1,
		},
		{
			name:       "announcement_removed",
			prev:       Config{Anns: []Announcement{ann(0, 0, nil, nil), ann(3, 0, nil, nil)}},
			next:       Config{Anns: []Announcement{ann(3, 0, nil, nil)}},
			prevChange: []AnnChange{AnnRemoved, AnnUnchanged},
			newChange:  []AnnChange{AnnUnchanged},
			prevToNew:  []int16{-1, 0},
			lenShift:   []int32{0, 0},
			touched:    [][]topo.ASN{nil, nil},
			numDirty:   1,
		},
		{
			name:       "prepend_change",
			prev:       Config{Anns: []Announcement{ann(1, 0, nil, nil)}},
			next:       Config{Anns: []Announcement{ann(1, 3, nil, nil)}},
			prevChange: []AnnChange{AnnShifted},
			newChange:  []AnnChange{AnnShifted},
			prevToNew:  []int16{0},
			lenShift:   []int32{3},
			touched:    [][]topo.ASN{nil},
			numDirty:   1,
		},
		{
			name:       "poison_added",
			prev:       Config{Anns: []Announcement{ann(1, 0, nil, nil)}},
			next:       Config{Anns: []Announcement{ann(1, 0, []topo.ASN{42}, nil)}},
			prevChange: []AnnChange{AnnShifted},
			newChange:  []AnnChange{AnnShifted},
			prevToNew:  []int16{0},
			lenShift:   []int32{2}, // a poison stuffs two ASNs (target + origin repeat)
			touched:    [][]topo.ASN{{42}},
			numDirty:   1,
		},
		{
			name:       "poison_swapped",
			prev:       Config{Anns: []Announcement{ann(1, 0, []topo.ASN{42}, nil)}},
			next:       Config{Anns: []Announcement{ann(1, 0, []topo.ASN{99}, nil)}},
			prevChange: []AnnChange{AnnShifted},
			newChange:  []AnnChange{AnnShifted},
			prevToNew:  []int16{0},
			lenShift:   []int32{0},
			touched:    [][]topo.ASN{{42, 99}},
			numDirty:   1,
		},
		{
			name:       "poison_reordered",
			prev:       Config{Anns: []Announcement{ann(1, 0, []topo.ASN{42, 99}, nil)}},
			next:       Config{Anns: []Announcement{ann(1, 0, []topo.ASN{99, 42}, nil)}},
			prevChange: []AnnChange{AnnShifted},
			newChange:  []AnnChange{AnnShifted},
			prevToNew:  []int16{0},
			lenShift:   []int32{0},
			touched:    [][]topo.ASN{nil}, // same set: nothing toggled, zero seeds
			numDirty:   1,
		},
		{
			name:       "community_changed",
			prev:       Config{Anns: []Announcement{ann(1, 2, []topo.ASN{42}, []Community{comm})}},
			next:       Config{Anns: []Announcement{ann(1, 2, []topo.ASN{42}, []Community{comm2})}},
			prevChange: []AnnChange{AnnReplaced},
			newChange:  []AnnChange{AnnReplaced},
			prevToNew:  []int16{-1},
			lenShift:   []int32{0},
			touched:    [][]topo.ASN{nil},
			numDirty:   1,
		},
		{
			name:       "mixed_multi_field",
			prev:       Config{Anns: []Announcement{ann(0, 0, nil, nil), ann(1, 1, []topo.ASN{7}, nil), ann(2, 0, nil, []Community{comm})}},
			next:       Config{Anns: []Announcement{ann(1, 1, []topo.ASN{8}, nil), ann(2, 0, nil, nil), ann(4, 0, nil, nil)}},
			prevChange: []AnnChange{AnnRemoved, AnnShifted, AnnReplaced},
			newChange:  []AnnChange{AnnShifted, AnnReplaced, AnnAdded},
			prevToNew:  []int16{-1, 0, -1},
			lenShift:   []int32{0, 0, 0},
			touched:    [][]topo.ASN{nil, {7, 8}, nil},
			numDirty:   4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := DiffConfigs(tc.prev, tc.next)
			if d.Same != tc.same || d.Identity != tc.identity {
				t.Fatalf("Same=%v Identity=%v, want %v/%v", d.Same, d.Identity, tc.same, tc.identity)
			}
			if !reflect.DeepEqual(d.PrevChange, tc.prevChange) {
				t.Errorf("PrevChange %v, want %v", d.PrevChange, tc.prevChange)
			}
			if !reflect.DeepEqual(d.NewChange, tc.newChange) {
				t.Errorf("NewChange %v, want %v", d.NewChange, tc.newChange)
			}
			if !reflect.DeepEqual(d.PrevToNew, tc.prevToNew) {
				t.Errorf("PrevToNew %v, want %v", d.PrevToNew, tc.prevToNew)
			}
			if !reflect.DeepEqual(d.LenShift, tc.lenShift) {
				t.Errorf("LenShift %v, want %v", d.LenShift, tc.lenShift)
			}
			if !reflect.DeepEqual(d.PoisonTouched, tc.touched) {
				t.Errorf("PoisonTouched %v, want %v", d.PoisonTouched, tc.touched)
			}
			if d.NumDirty != tc.numDirty {
				t.Errorf("NumDirty %d, want %d", d.NumDirty, tc.numDirty)
			}
			for ai := range tc.prev.Anns {
				if got, want := d.Carried(ai), d.PrevToNew[ai] >= 0; got != want {
					t.Errorf("Carried(%d)=%v, want %v", ai, got, want)
				}
			}

			// Key() consistency: the diff's Same verdict and canonical key
			// equality must agree — both define "routing-identical".
			if keyEq := tc.prev.Key() == tc.next.Key(); keyEq != d.Same {
				t.Errorf("Key equality %v disagrees with diff.Same %v", keyEq, d.Same)
			}
		})
	}
}

// TestDiffConfigsKeyConsistencyRandomized cross-checks diff.Same against
// Config.Key() over random config pairs and mutation pairs: the two
// notions of routing identity must never disagree.
func TestDiffConfigsKeyConsistencyRandomized(t *testing.T) {
	g, o := worldForTest(t, 33, 600)
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 200; trial++ {
		a := randomConfig(rng, g, o)
		var b Config
		if trial%2 == 0 {
			b = mutateConfig(rng, g, o, a)
		} else {
			b = randomConfig(rng, g, o)
		}
		d := DiffConfigs(a, b)
		keyEq := a.Key() == b.Key()
		// Exception: Key preserves poison order (it shapes reported
		// AS-paths) while the diff treats a pure reorder as routing-
		// equivalent shift-0; Same stays false there, so only check the
		// directions that must hold.
		if keyEq && !d.Same {
			t.Fatalf("trial %d: equal keys but diff.Same=false (%v vs %v)", trial, a, b)
		}
		if d.Identity && !keyEq {
			t.Fatalf("trial %d: diff.Identity but keys differ (%v vs %v)", trial, a, b)
		}
	}
}
