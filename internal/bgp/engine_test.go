package bgp

import (
	"testing"

	"spooftrack/internal/topo"
)

// diamond builds the test topology used across these tests:
//
//	t1(1) --- t2(2)     tier-1 peering
//	  |         |
//	 a(3)      b(4)     mid-tier, customers of t1 / t2
//	    \     /
//	    src(5)          stub, customer of both a and b
//
// The origin AS (47065) has link 0 at provider a and link 1 at provider b.
func diamond(t *testing.T) (*topo.Graph, Origin) {
	t.Helper()
	b := topo.NewBuilder()
	b.MarkTier1(1)
	b.MarkTier1(2)
	for _, err := range []error{
		b.AddP2P(1, 2),
		b.AddP2C(1, 3),
		b.AddP2C(2, 4),
		b.AddP2C(3, 5),
		b.AddP2C(4, 5),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	g := b.Freeze()
	origin := Origin{ASN: 47065, Links: []Link{
		{Name: "L0@a", Provider: g.MustIndex(3)},
		{Name: "L1@b", Provider: g.MustIndex(4)},
	}}
	return g, origin
}

// noiseless returns engine params with all realism knobs off, for exact
// assertions.
func noiseless() Params {
	return Params{Seed: 1, PolicyNoiseFrac: 0, IgnorePoisonFrac: 0, Tier1PoisonFilter: true}
}

func newEngine(t *testing.T, g *topo.Graph, o Origin, p Params) *Engine {
	t.Helper()
	e, err := NewEngine(g, o, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func propagate(t *testing.T, e *Engine, cfg Config) *Outcome {
	t.Helper()
	out, err := e.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestAnycastBothLinks(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}, {Link: 1}}})

	// Providers take their direct customer routes.
	if l := out.CatchmentOf(g.MustIndex(3)); l != 0 {
		t.Errorf("a in catchment %d, want 0", l)
	}
	if l := out.CatchmentOf(g.MustIndex(4)); l != 1 {
		t.Errorf("b in catchment %d, want 1", l)
	}
	// Tier-1s hear customer routes from their own sides.
	if l := out.CatchmentOf(g.MustIndex(1)); l != 0 {
		t.Errorf("t1 in catchment %d, want 0", l)
	}
	if l := out.CatchmentOf(g.MustIndex(2)); l != 1 {
		t.Errorf("t2 in catchment %d, want 1", l)
	}
	// Everyone has a route.
	if n := out.NumRouted(); n != g.NumASes() {
		t.Errorf("routed %d of %d ASes", n, g.NumASes())
	}
	// src has two equal provider routes; either is fine, but it must be
	// consistent with its next hop.
	src := g.MustIndex(5)
	nh := out.NextHop(src)
	if nh != g.MustIndex(3) && nh != g.MustIndex(4) {
		t.Fatalf("src next hop %d unexpected", nh)
	}
	wantLink := LinkID(0)
	if nh == g.MustIndex(4) {
		wantLink = 1
	}
	if l := out.CatchmentOf(src); l != wantLink {
		t.Errorf("src catchment %d inconsistent with next hop", l)
	}
}

func TestSingleLinkReachesAll(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}}})
	for i := 0; i < g.NumASes(); i++ {
		if l := out.CatchmentOf(i); l != 0 {
			t.Errorf("AS%d in catchment %d, want 0", g.ASN(i), l)
		}
	}
	// b's route must be the valley-free one through t2 (its provider),
	// not through its customer src.
	b := g.MustIndex(4)
	if nh := out.NextHop(b); nh != g.MustIndex(2) {
		t.Errorf("b next hop AS%d, want t2", g.ASN(nh))
	}
	if got := out.PathLen(b); got != 4 { // b t2 t1 a o
		t.Errorf("b path length %d, want 4", got)
	}
}

func TestValleyFreeStubDoesNotTransit(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}}})
	// src's provider-learned route must not be exported to b, so b's
	// path cannot contain src.
	for _, hop := range out.DataPath(g.MustIndex(4)) {
		if hop == g.MustIndex(5) {
			t.Fatal("b's route transits stub src: valley")
		}
	}
}

func TestLocalPrefBeatsPathLength(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	// Heavy prepending on link 0: ties break away from it, but customer
	// routes (higher LocalPref) must stay on it regardless of length.
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Prepend: 4}, {Link: 1}}})
	// src had two equal provider routes; prepending pushes it to b.
	if l := out.CatchmentOf(g.MustIndex(5)); l != 1 {
		t.Errorf("src in catchment %d, want 1 after prepending link 0", l)
	}
	// t1 keeps its customer route via a (LocalPref) even though the peer
	// route via t2 is much shorter.
	if l := out.CatchmentOf(g.MustIndex(1)); l != 0 {
		t.Errorf("t1 in catchment %d, want 0: prepending must not override LocalPref", l)
	}
	if got := out.PathLen(g.MustIndex(1)); got != 6 { // a o o o o o (self excluded)
		t.Errorf("t1 path length %d, want 6", got)
	}
}

func TestPrependFlipsTies(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	src := g.MustIndex(5)
	// Prepend link 0 -> src goes to 1; prepend link 1 -> src goes to 0.
	out0 := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Prepend: 4}, {Link: 1}}})
	out1 := propagate(t, e, Config{Anns: []Announcement{{Link: 0}, {Link: 1, Prepend: 4}}})
	if l := out0.CatchmentOf(src); l != 1 {
		t.Errorf("prepending link 0: src catchment %d, want 1", l)
	}
	if l := out1.CatchmentOf(src); l != 0 {
		t.Errorf("prepending link 1: src catchment %d, want 0", l)
	}
}

func TestPoisonDisconnectsTarget(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	// Only link 0 announced, poisoning t1: t1 rejects the announcement,
	// and everything behind t1 (t2, b) loses its route.
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{1}}}})
	for _, asn := range []topo.ASN{1, 2, 4} {
		if out.HasRoute(g.MustIndex(asn)) {
			t.Errorf("AS%d should have no route when t1 is poisoned", asn)
		}
	}
	for _, asn := range []topo.ASN{3, 5} {
		if l := out.CatchmentOf(g.MustIndex(asn)); l != 0 {
			t.Errorf("AS%d in catchment %d, want 0", asn, l)
		}
	}
}

func TestPoisonMovesCatchment(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	// Both links announced; poisoning t1 on link 0 forces t1 (and its
	// dependents) onto link 1's announcement.
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{1}}, {Link: 1}}})
	if l := out.CatchmentOf(g.MustIndex(1)); l != 1 {
		t.Errorf("poisoned t1 in catchment %d, want 1", l)
	}
	// a still uses its direct route.
	if l := out.CatchmentOf(g.MustIndex(3)); l != 0 {
		t.Errorf("a in catchment %d, want 0", l)
	}
}

func TestPoisonIgnoredWhenLoopPreventionDisabled(t *testing.T) {
	g, o := diamond(t)
	p := noiseless()
	p.IgnorePoisonFrac = 1.0 // every AS ignores poisoning
	e := newEngine(t, g, o, p)
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{1}}}})
	if !out.HasRoute(g.MustIndex(1)) {
		t.Fatal("t1 ignores poisoning but lost its route")
	}
	if l := out.CatchmentOf(g.MustIndex(1)); l != 0 {
		t.Errorf("t1 in catchment %d, want 0", l)
	}
}

func TestTier1PoisonFilter(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	// Announce on link 0 poisoning t2. t1 is tier-1 and receives the
	// route from customer a with a tier-1 (t2) in the path: the
	// route-leak filter drops it, so t1, t2 and b all lose the prefix.
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{2}}}})
	for _, asn := range []topo.ASN{1, 2, 4} {
		if out.HasRoute(g.MustIndex(asn)) {
			t.Errorf("AS%d should have no route (tier-1 filter)", asn)
		}
	}

	// With the filter disabled, t1 accepts and only t2 (the poisoned AS)
	// rejects; t2 has no alternative, and b behind it loses out too.
	p := noiseless()
	p.Tier1PoisonFilter = false
	e2 := newEngine(t, g, o, p)
	out2 := propagate(t, e2, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{2}}}})
	if !out2.HasRoute(g.MustIndex(1)) {
		t.Error("t1 should keep the route with the filter disabled")
	}
	if out2.HasRoute(g.MustIndex(2)) {
		t.Error("poisoned t2 should reject the route")
	}
}

func TestASPathContents(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Prepend: 1, Poison: []topo.ASN{64500}}}})
	// b's control-plane path: b t2 t1 a | o o | 64500 o
	got := out.ASPath(g.MustIndex(4))
	want := []topo.ASN{4, 2, 1, 3, 47065, 47065, 64500, 47065}
	if len(got) != len(want) {
		t.Fatalf("ASPath = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ASPath = %v, want %v", got, want)
		}
	}
	// Data path has no stuffing: b t2 t1 a.
	dp := out.DataPath(g.MustIndex(4))
	wantDP := []int{g.MustIndex(4), g.MustIndex(2), g.MustIndex(1), g.MustIndex(3)}
	if len(dp) != len(wantDP) {
		t.Fatalf("DataPath = %v, want %v", dp, wantDP)
	}
	for i := range wantDP {
		if dp[i] != wantDP[i] {
			t.Fatalf("DataPath = %v, want %v", dp, wantDP)
		}
	}
}

func TestNoRouteAccessors(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{1}}}})
	t1 := g.MustIndex(1)
	if out.ASPath(t1) != nil || out.DataPath(t1) != nil {
		t.Error("paths of unrouted AS should be nil")
	}
	if out.PathLen(t1) != -1 {
		t.Error("PathLen of unrouted AS should be -1")
	}
	if out.ClassOf(t1) != RouteNone {
		t.Error("ClassOf unrouted AS should be RouteNone")
	}
	if out.NextHop(t1) != -1 {
		t.Error("NextHop of unrouted AS should be -1")
	}
}

func TestRouteClasses(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}}})
	cases := map[topo.ASN]RouteClass{
		3: RouteCustomer, // direct origin announcement
		1: RouteCustomer, // learned from customer a
		2: RoutePeer,     // learned from peer t1
		4: RouteProvider, // learned from provider t2
		5: RouteProvider, // learned from provider a
	}
	for asn, want := range cases {
		if got := out.ClassOf(g.MustIndex(asn)); got != want {
			t.Errorf("AS%d class %v, want %v", asn, got, want)
		}
	}
}

func TestPinnedPolicyOverride(t *testing.T) {
	// Build engines with full policy noise until we find one where src
	// pins provider b; then verify src routes via b even when the a-side
	// route is shorter.
	g, o := diamond(t)
	src, bIdx := g.MustIndex(5), g.MustIndex(4)
	for seed := uint64(0); seed < 64; seed++ {
		p := Params{Seed: seed, PolicyNoiseFrac: 1.0}
		e := newEngine(t, g, o, p)
		if e.PinnedNeighbor(src) != bIdx {
			continue
		}
		// Link 1 prepended: without pinning src would prefer the shorter
		// route via a; the pin forces src's next hop to b regardless.
		out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}, {Link: 1, Prepend: 4}}})
		if nh := out.NextHop(src); nh != bIdx {
			t.Fatalf("pinned src has next hop %d, want b", nh)
		}
		return
	}
	t.Fatal("no seed pinned src to b; widen the search")
}

func TestConfigValidate(t *testing.T) {
	_, o := diamond(t)
	cases := []Config{
		{},                                 // no announcements
		{Anns: []Announcement{{Link: 5}}},  // out of range
		{Anns: []Announcement{{Link: -1}}}, // negative
		{Anns: []Announcement{{Link: 0}, {Link: 0}}},                 // duplicate
		{Anns: []Announcement{{Link: 0, Prepend: -1}}},               // bad prepend
		{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{47065}}}}, // poison self
	}
	for i, cfg := range cases {
		if err := cfg.Validate(o); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, cfg)
		}
	}
	good := Config{Anns: []Announcement{{Link: 0, Prepend: 4, Poison: []topo.ASN{9}}}}
	if err := good.Validate(o); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewEngineValidation(t *testing.T) {
	g, o := diamond(t)
	if _, err := NewEngine(g, Origin{ASN: 47065}, noiseless()); err == nil {
		t.Error("expected error for origin without links")
	}
	bad := o
	bad.ASN = 1 // collides with t1
	if _, err := NewEngine(g, bad, noiseless()); err == nil {
		t.Error("expected error for colliding origin ASN")
	}
	bad2 := Origin{ASN: 47065, Links: []Link{{Provider: 99}}}
	if _, err := NewEngine(g, bad2, noiseless()); err == nil {
		t.Error("expected error for out-of-range provider")
	}
}

func TestAnnouncementHelpers(t *testing.T) {
	a := Announcement{Link: 0, Prepend: 2, Poison: []topo.ASN{7, 8}}
	if a.PathLen() != 7 {
		t.Fatalf("PathLen = %d, want 7", a.PathLen())
	}
	path := a.InitialPath(100)
	want := []topo.ASN{100, 100, 100, 7, 100, 8, 100}
	if len(path) != len(want) {
		t.Fatalf("InitialPath = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("InitialPath = %v, want %v", path, want)
		}
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{Anns: []Announcement{
		{Link: 0, Prepend: 4},
		{Link: 2, Poison: []topo.ASN{64512}},
	}}
	s := cfg.String()
	if s == "" || s == "⟨A={}; P={}; Q={}⟩" {
		t.Fatalf("unhelpful String: %q", s)
	}
}

func TestActiveLinksSorted(t *testing.T) {
	cfg := Config{Anns: []Announcement{{Link: 3}, {Link: 0}, {Link: 2}}}
	ls := cfg.ActiveLinks()
	want := []LinkID{0, 2, 3}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("ActiveLinks = %v, want %v", ls, want)
		}
	}
}
