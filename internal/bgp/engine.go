package bgp

import (
	"fmt"
	"sort"
	"sync"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
)

// Params configures the realism knobs of the routing engine.
type Params struct {
	// Seed drives the deterministic tiebreak priorities and the policy
	// noise assignment.
	Seed uint64
	// PolicyNoiseFrac is the fraction of ASes whose LocalPref is pinned
	// to a random neighbor instead of following Gao-Rexford preferences.
	// The paper's Fig. 9 observes that a minority of ASes deviate from
	// the best-relationship criterion.
	PolicyNoiseFrac float64
	// IgnorePoisonFrac is the fraction of ASes with BGP loop prevention
	// disabled (e.g., for multi-site traffic engineering, §III-A-c);
	// poisoning such an AS has no effect.
	IgnorePoisonFrac float64
	// LengthBlindFrac is the fraction of ASes whose later tiebreakers
	// (IGP cost, MED, route age) dominate AS-path length: they pick
	// among equally-preferred routes by local priority regardless of
	// length. These ASes violate the shortest-path criterion audited in
	// Fig. 9 and resist prepending-based manipulation.
	LengthBlindFrac float64
	// CommunitySupportFrac is the fraction of ASes that implement
	// customer-facing action communities (ActNoExportTo / ActPrependTo).
	// Communities targeting other ASes are ignored.
	CommunitySupportFrac float64
	// Tier1PoisonFilter enables the route-leak heuristic: tier-1 ASes
	// drop customer-learned routes whose AS-path contains another
	// tier-1 (§III-A-c).
	Tier1PoisonFilter bool
}

// DefaultParams returns the engine parameters used by the default world:
// modest policy noise consistent with the compliance levels in Fig. 9.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:                 seed,
		PolicyNoiseFrac:      0.08,
		IgnorePoisonFrac:     0.10,
		LengthBlindFrac:      0.12,
		CommunitySupportFrac: 0.60,
		Tier1PoisonFilter:    true,
	}
}

// Engine propagates announcement configurations over a topology and
// computes, for every AS, its chosen route and catchment. An Engine is
// immutable after construction and safe for concurrent Propagate calls;
// per-propagation working state lives in a pooled scratch (scratch.go),
// so repeated calls on the same engine allocate only each Outcome's
// selection array.
type Engine struct {
	g      *topo.Graph
	origin Origin
	params Params

	// pinned[i] is the dense index of the neighbor the AS prefers above
	// all relationship classes, or -1 to follow Gao-Rexford.
	pinned []int
	// ignorePoison[i] marks ASes with loop prevention disabled.
	ignorePoison []bool
	// lengthBlind[i] marks ASes whose tiebreak priority dominates
	// AS-path length.
	lengthBlind []bool
	// honorsComm[i] marks ASes implementing action communities.
	honorsComm []bool
	// pri[i][k] is the tiebreak priority AS i assigns to its k-th
	// neighbor (lower wins); a seeded stand-in for IGP cost / router-id
	// tiebreaks.
	pri [][]int32
	// t1f[i] folds params.Tier1PoisonFilter && g.IsTier1(i) into one
	// per-event load.
	t1f []bool
	// rslot[i][k] is the slot of AS i inside the adjacency list of its
	// k-th neighbor, so the wake filter can read the exact tiebreak
	// priority a neighbor assigns to an offer from i (e.pri[j][rslot])
	// without searching j's adjacency. Purely graph-determined, shared
	// across Perturbed clones.
	rslot [][]int32

	scratch sync.Pool // *propScratch
	outArrs sync.Pool // *outcomeArrays, fed by Outcome.Release
}

// NewEngine builds an engine for the origin over the graph. It validates
// that every link's provider index is in range and that the origin ASN
// does not collide with a topology AS.
func NewEngine(g *topo.Graph, origin Origin, params Params) (*Engine, error) {
	if len(origin.Links) == 0 {
		return nil, fmt.Errorf("bgp: origin has no peering links")
	}
	if _, ok := g.Index(origin.ASN); ok {
		return nil, fmt.Errorf("bgp: origin AS%d collides with a topology AS", origin.ASN)
	}
	for i, l := range origin.Links {
		if l.Provider < 0 || l.Provider >= g.NumASes() {
			return nil, fmt.Errorf("bgp: link %d provider index %d out of range", i, l.Provider)
		}
	}
	e := &Engine{
		g:            g,
		origin:       origin,
		params:       params,
		pinned:       make([]int, g.NumASes()),
		ignorePoison: make([]bool, g.NumASes()),
		lengthBlind:  make([]bool, g.NumASes()),
		honorsComm:   make([]bool, g.NumASes()),
		pri:          make([][]int32, g.NumASes()),
		t1f:          make([]bool, g.NumASes()),
	}
	rng := stats.NewRNG(params.Seed ^ 0x5b0ff7acc0ffee)
	for i := 0; i < g.NumASes(); i++ {
		ns := g.Neighbors(i)
		e.t1f[i] = params.Tier1PoisonFilter && g.IsTier1(i)
		e.pinned[i] = -1
		if params.PolicyNoiseFrac > 0 && len(ns) > 0 && rng.Bool(params.PolicyNoiseFrac) {
			e.pinned[i] = ns[rng.Intn(len(ns))].Idx
		}
		e.ignorePoison[i] = params.IgnorePoisonFrac > 0 && rng.Bool(params.IgnorePoisonFrac)
		e.lengthBlind[i] = params.LengthBlindFrac > 0 && rng.Bool(params.LengthBlindFrac)
		e.honorsComm[i] = params.CommunitySupportFrac > 0 && rng.Bool(params.CommunitySupportFrac)
		perm := rng.Perm(len(ns))
		pr := make([]int32, len(ns))
		for k := range ns {
			pr[k] = int32(perm[k])
		}
		e.pri[i] = pr
	}
	e.rslot = reverseSlots(g)
	return e, nil
}

// reverseSlots builds, for every AS i and neighbor slot k, the slot of i
// in that neighbor's (index-sorted) adjacency list. One flat backing
// array keeps it a single allocation per engine.
func reverseSlots(g *topo.Graph) [][]int32 {
	n := g.NumASes()
	total := 0
	for i := 0; i < n; i++ {
		total += g.Degree(i)
	}
	flat := make([]int32, total)
	rs := make([][]int32, n)
	off := 0
	for i := 0; i < n; i++ {
		ns := g.Neighbors(i)
		row := flat[off : off+len(ns) : off+len(ns)]
		off += len(ns)
		for k, nb := range ns {
			adj := g.Neighbors(nb.Idx)
			lo, hi := 0, len(adj)
			for lo < hi {
				mid := (lo + hi) / 2
				if adj[mid].Idx < i {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			row[k] = int32(lo)
		}
		rs[i] = row
	}
	return rs
}

// Graph returns the topology the engine routes over.
func (e *Engine) Graph() *topo.Graph { return e.g }

// Perturbed clones the engine, re-drawing the tiebreak priorities and
// policy-noise assignments of a seeded fraction of ASes. This models
// route churn between two points in time: most of the Internet decides
// exactly as before, a few networks re-homed, re-tuned IGP costs, or
// changed policy.
func (e *Engine) Perturbed(frac float64, seed uint64) (*Engine, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("bgp: perturbation fraction %v out of [0,1]", frac)
	}
	n := e.g.NumASes()
	cp := &Engine{
		g:            e.g,
		origin:       e.origin,
		params:       e.params,
		pinned:       append([]int(nil), e.pinned...),
		ignorePoison: append([]bool(nil), e.ignorePoison...),
		lengthBlind:  append([]bool(nil), e.lengthBlind...),
		honorsComm:   append([]bool(nil), e.honorsComm...),
		pri:          make([][]int32, n),
		t1f:          e.t1f,
		rslot:        e.rslot,
	}
	copy(cp.pri, e.pri) // shared rows, replaced below for perturbed ASes
	rng := stats.NewRNG(seed ^ 0xd21f7ed)
	for i := 0; i < n; i++ {
		if !rng.Bool(frac) {
			continue
		}
		ns := e.g.Neighbors(i)
		perm := rng.Perm(len(ns))
		pr := make([]int32, len(ns))
		for k := range ns {
			pr[k] = int32(perm[k])
		}
		cp.pri[i] = pr
		cp.pinned[i] = -1
		if e.params.PolicyNoiseFrac > 0 && len(ns) > 0 && rng.Bool(e.params.PolicyNoiseFrac) {
			cp.pinned[i] = ns[rng.Intn(len(ns))].Idx
		}
		cp.lengthBlind[i] = e.params.LengthBlindFrac > 0 && rng.Bool(e.params.LengthBlindFrac)
	}
	return cp, nil
}

// Origin returns the origin AS definition.
func (e *Engine) Origin() Origin { return e.origin }

// IgnoresPoison reports whether the AS at dense index i has loop
// prevention disabled.
func (e *Engine) IgnoresPoison(i int) bool { return e.ignorePoison[i] }

// PinnedNeighbor returns the dense index of the neighbor AS i pins its
// LocalPref to, or -1 if i follows Gao-Rexford preferences.
func (e *Engine) PinnedNeighbor(i int) int { return e.pinned[i] }

// route classes, ordered by decreasing LocalPref.
const (
	classPinned   int8 = 0 // policy-noise override
	classCustomer int8 = 1
	classPeer     int8 = 2
	classProvider int8 = 3
	classInvalid  int8 = 4
)

// selection is an AS's currently chosen route.
type selection struct {
	class   int8
	ann     int16 // index into cfg.Anns
	pathLen int32 // total AS-path length incl. initial announcement path
	nextHop int32 // dense index of next-hop AS, or -1 for a direct origin link
	pri     int32 // tiebreak priority of the next hop at this AS
}

var noRoute = selection{class: classInvalid, ann: -1, nextHop: -1, pathLen: 1 << 30, pri: 1 << 30}

// betterFor reports whether a beats b in the BGP decision process of AS
// i. Standard ASes compare (LocalPref class, path length, tiebreak);
// length-blind ASes let their local tiebreak dominate length, modeling
// routers whose IGP/MED/age tiebreakers decide before prepending can
// bite.
func (e *Engine) betterFor(i int, a, b selection) bool {
	if a.class != b.class {
		return a.class < b.class
	}
	if e.lengthBlind[i] {
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		if a.pathLen != b.pathLen {
			return a.pathLen < b.pathLen
		}
		return a.ann < b.ann
	}
	if a.pathLen != b.pathLen {
		return a.pathLen < b.pathLen
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.ann < b.ann
}

// maxEvents caps update processing per propagation as a safety net
// against policy dispute wheels; expressed as a multiple of the AS count.
const maxEventsPerAS = 64

// Propagate computes the routing outcome of the configuration: every
// AS's selected route toward the origin prefix, from which catchments and
// AS-paths derive. It is deterministic for a given engine and config.
//
// The Outcome is returned by value so a propagation allocates only the
// per-AS arrays the Outcome owns — and none at all when the caller
// recycles outcomes with Outcome.Release; all other working state is
// recycled through the engine's scratch pool.
func (e *Engine) Propagate(cfg Config) (Outcome, error) {
	return e.PropagateTraced(cfg, nil)
}

// PropagateTraced is Propagate with trace-span parentage: when tracing
// is enabled the propagation's "bgp.propagate" span nests under parent
// (or starts a root span when parent is nil). With tracing disabled the
// only overhead over Propagate is a few atomic loads and one dead
// branch per processed event — the budget BenchmarkPropagateTraced
// enforces.
func (e *Engine) PropagateTraced(cfg Config, parent *trace.Span) (Outcome, error) {
	if err := cfg.Validate(e.origin); err != nil {
		return Outcome{}, err
	}
	sp := trace.StartChild(parent, "bgp.propagate")
	traced := sp != nil
	out := e.newOutcome(cfg)
	out.converged = true
	sel := out.sel
	for i := range sel {
		sel[i] = noRoute
		out.second[i] = noRoute
		out.sendCls[i] = 0 // pooled arrays arrive unzeroed
	}

	s := e.getScratch()
	defer e.putScratch(s, cfg)
	s.sendClass = out.sendCls
	e.buildCtx(s, cfg)

	// Seed the queue with the providers receiving direct announcements,
	// in ascending dense-index order for a deterministic initial sweep.
	seeds := s.seeds[:0]
	for _, a := range cfg.Anns {
		p := e.origin.Links[a.Link].Provider
		if !s.queued[p] {
			s.queued[p] = true
			seeds = append(seeds, p)
		}
	}
	sort.Ints(seeds)
	for _, p := range seeds {
		s.pushQueue(p)
	}
	s.seeds = seeds[:0]

	events, highWater, converged := e.runQueue(cfg, s, sel, out.second, traced)
	// Policy dispute wheels can prevent convergence, as in real BGP; the
	// frozen state is still deterministic and reported as such.
	out.converged = converged
	if traced {
		e.endPropagateSpan(sp, &out, cfg, s, events, highWater)
	}
	return out, nil
}

// runQueue drains the scratch's event queue to a routing fixpoint:
// event-driven (Gauss-Seidel) processing that re-evaluates each popped
// AS's decision against the current state and, on change, enqueues its
// neighbors. Sequential processing plus chainInfo's loop check maintains
// the invariant that next-hop chains are always acyclic. It returns the
// number of events processed, the queue's high-water mark (tracked only
// when traced), and whether a fixpoint was reached before the event
// budget ran out — when it was not, the queue is left non-empty (the
// caller's putScratch drains it) and sel freezes mid-oscillation.
//
// Both Propagate (empty initial state, seeded with the direct-
// announcement providers) and PropagateDelta (carried previous state,
// seeded with the diff's dirty frontier) converge through this one
// loop, so the two paths cannot drift apart in decision semantics.
func (e *Engine) runQueue(cfg Config, s *propScratch, sel, sel2 []selection, traced bool) (events, highWater int, converged bool) {
	budget := maxEventsPerAS * e.g.NumASes()
	for s.qlen > 0 {
		if traced && s.qlen > highWater {
			highWater = s.qlen
		}
		i := s.popQueue()
		s.queued[i] = false
		events++
		if events > budget {
			return events, highWater, false
		}
		s.epoch++
		best, second, bestTrue := e.decide(i, cfg, s, sel)
		// The runner-up refreshes even when the selection does not: a
		// neighbor's change may have replaced the best alternative without
		// beating the current best.
		sel2[i] = second
		if best != sel[i] {
			sel[i] = best
			s.sendClass[i] = bestTrue
			// Wake filter: a neighbor j only needs to re-decide if it
			// routes through i, or if the best possible version of i's
			// new export could strictly beat j's runner-up bound. The
			// candidate is exact in class, announcement, length lower
			// bound (communities only lengthen), and tiebreak priority
			// (via rslot); the omitted validity checks — poison, loop,
			// route-leak — only weaken or kill the real offer. Below the
			// bound the offer cannot displace sel[j] (which strictly
			// beats sel2[j] by the decide invariant) and cannot
			// invalidate sel2[j] as an upper bound, so skipping the wake
			// preserves both the fixpoint and the prune soundness.
			exportable := best.class != classInvalid
			cls := bestTrue
			rslot := e.rslot[i]
			for k, nb := range e.g.Neighbors(i) {
				j := nb.Idx
				if s.queued[j] {
					continue
				}
				if sel[j].nextHop != int32(i) {
					if !exportable {
						continue
					}
					// Valley-free export: i sends best to j only when it is
					// customer-learned or j is i's customer.
					if cls != classCustomer && nb.Rel != topo.RelCustomer {
						continue
					}
					// Class of i's offer from j's point of view.
					oc := classProvider
					switch nb.Rel {
					case topo.RelProvider:
						oc = classCustomer
					case topo.RelPeer:
						oc = classPeer
					}
					if e.pinned[j] == i {
						oc = classPinned
					}
					cand := selection{
						class:   oc,
						ann:     best.ann,
						pathLen: best.pathLen + 1,
						nextHop: int32(i),
						pri:     e.pri[j][rslot[k]],
					}
					if !e.betterFor(j, cand, sel2[j]) {
						continue
					}
				}
				s.queued[j] = true
				s.pushQueue(j)
			}
		}
	}
	return events, highWater, true
}

// decide runs the BGP decision process of AS i against the current
// selection state: the best route among direct origin announcements and
// neighbor offers, after export filtering, loop prevention, poisoning,
// communities, and the tier-1 route-leak filter. Alongside the winner it
// returns the runner-up — the best offer that lost (noRoute when the
// winner was the only valid offer) — and the winner's true (un-pinned)
// relationship class, sparing the caller a topology lookup when the
// selection changes.
func (e *Engine) decide(i int, cfg Config, s *propScratch, sel []selection) (selection, selection, int8) {
	best, second := noRoute, noRoute
	// Direct origin routes are class customer.
	bestTrue := classCustomer
	if s.direct[i] {
		// Direct origin announcements (origin is a customer of the
		// provider; always class customer unless pinned elsewhere).
		for ai := range cfg.Anns {
			a := &cfg.Anns[ai]
			if e.origin.Links[a.Link].Provider != i {
				continue
			}
			if row := s.ctx.poisoned[ai]; row != nil && row[i] && !e.ignorePoison[i] {
				continue
			}
			cand := selection{
				class:   classCustomer,
				ann:     int16(ai),
				pathLen: s.ctx.annLen[ai],
				nextHop: -1,
				pri:     -1, // direct customer routes beat equal-length alternatives
			}
			if e.betterFor(i, cand, best) {
				second = best
				best = cand
			} else if e.betterFor(i, cand, second) {
				second = cand
			}
		}
	}
	// Offers from neighbors, based on their current selections.
	ns := e.g.Neighbors(i)
	pri := e.pri[i]
	pinned := e.pinned[i]
	t1Filter := e.t1f[i]
	for k, nb := range ns {
		sn := sel[nb.Idx]
		if sn.class == classInvalid {
			continue
		}
		// Export filter at the sender: customer-learned (or direct
		// origin) routes go to everyone; peer/provider-learned routes
		// only to customers. A pinned selection exports according to
		// the true relationship class of its next hop (cached in
		// sendClass). nb.Rel is nb's relationship to i from i's view,
		// so i is nb's customer exactly when nb.Rel is RelProvider.
		if s.sendClass[nb.Idx] != classCustomer && nb.Rel != topo.RelProvider {
			continue
		}
		cand, ok := e.offerFrom(sel, sn, nb, i, s, t1Filter)
		if !ok {
			continue
		}
		tc := cand.class
		cand.pri = pri[k]
		if pinned == nb.Idx {
			cand.class = classPinned
		}
		if e.betterFor(i, cand, best) {
			second = best
			best = cand
			bestTrue = tc
		} else if e.betterFor(i, cand, second) {
			second = cand
		}
	}
	return best, second, bestTrue
}

// endPropagateSpan attaches the propagation's introspection counters to
// its span and ends it: events processed, the ring queue's high-water
// mark, whether this run reset the chain-memo epoch stamps (a fresh,
// never-pooled scratch), and the converged/size attributes.
func (e *Engine) endPropagateSpan(sp *trace.Span, out *Outcome, cfg Config, s *propScratch, events, highWater int) {
	sp.Count("events", int64(events))
	sp.Count("queue_high_water", int64(highWater))
	if s.fresh {
		sp.Count("epoch_resets", 1)
	}
	sp.Set(
		trace.Int("ases", int64(e.g.NumASes())),
		trace.Int("anns", int64(len(cfg.Anns))),
		trace.Bool("converged", out.converged),
	)
	sp.End()
}

// offerFrom computes the route neighbor nb (as seen from receiver i)
// currently exports to i, applying loop prevention, poisoning, action
// communities, and the tier-1 route-leak filter. The caller must already
// have checked that sn (= sel[nb.Idx]) is a valid selection and that the
// valley-free export filter admits it toward i; both call sites do so
// inline because those two rejections dominate and the checks are two
// array reads. The returned selection has class set from i's point of
// view and pri unset. recvT1Filter tells whether the receiver applies
// the route-leak filter.
func (e *Engine) offerFrom(sel []selection, sn selection, nb topo.Neighbor, i int, s *propScratch, recvT1Filter bool) (selection, bool) {
	ai := int(sn.ann)
	// Action communities at the exporting AS: suppress or lengthen the
	// export toward i if nb honors them.
	remotePrepend := int32(0)
	if s.ctx.anyComm && e.honorsComm[nb.Idx] {
		iASN := e.g.ASN(i)
		nbASN := e.g.ASN(nb.Idx)
		if hasCommunity(s.ctx.comm.noExport, ai, nbASN, iASN) {
			return selection{}, false
		}
		if hasCommunity(s.ctx.comm.prepend, ai, nbASN, iASN) {
			remotePrepend = remotePrependDepth
		}
	}
	// Loop prevention on the embedded poison sentinels.
	if s.ctx.anyPoison {
		if row := s.ctx.poisoned[ai]; row != nil && row[i] && !e.ignorePoison[i] {
			return selection{}, false
		}
	}
	// Loop prevention on the actual path (reject if i already forwards
	// for this route) and the tier-1 route-leak scan, in one memoized
	// walk of the acyclic next-hop chain.
	onChain, chainT1 := s.chainInfo(sel, e.g, nb.Idx, i)
	if onChain {
		return selection{}, false
	}
	// Tier-1 route-leak filter: a tier-1 drops customer-learned routes
	// whose path contains another tier-1 (natural or poisoned). A
	// poisoned copy of the receiver's own ASN does not trip the filter —
	// that is plain loop prevention, handled above.
	if recvT1Filter && nb.Rel == topo.RelCustomer {
		if s.ctx.anyPoison {
			iASN := e.g.ASN(i)
			for _, p := range s.ctx.poisonTier1[ai] {
				if p != iASN {
					return selection{}, false
				}
			}
		}
		if chainT1 {
			return selection{}, false
		}
	}
	class := classProvider
	switch nb.Rel {
	case topo.RelCustomer:
		class = classCustomer
	case topo.RelPeer:
		class = classPeer
	}
	return selection{
		class:   class,
		ann:     sn.ann,
		pathLen: sn.pathLen + 1 + remotePrepend,
		nextHop: int32(nb.Idx),
	}, true
}

// trueClass maps a selection back to its relationship class (resolving
// pinned overrides) for export decisions.
func (e *Engine) trueClass(owner int, s selection) int8 {
	if s.nextHop == -1 {
		return classCustomer // direct origin announcement: origin is a customer
	}
	rel, ok := e.g.Rel(owner, int(s.nextHop))
	if !ok {
		return classProvider
	}
	switch rel {
	case topo.RelCustomer:
		return classCustomer
	case topo.RelPeer:
		return classPeer
	default:
		return classProvider
	}
}
