// Package report turns localization output into the operator-facing
// artifacts the paper motivates in §I: identifying networks that do not
// deploy ingress filtering (BCP38) "helps Internet bodies focus efforts
// and drive adoption of best practices", and feeds automated mitigation.
// An Evidence report documents, per candidate network, why the
// correlation implicates it: how many configurations observed it, the
// volume share its catchment links carried, and its final cluster.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/topo"
)

// Candidate is the evidence collected for one implicated network.
type Candidate struct {
	// ASN of the candidate network.
	ASN topo.ASN `json:"asn"`
	// ClusterSize is the size of the candidate's final cluster; the
	// localization cannot distinguish within a cluster, so this is the
	// precision bound.
	ClusterSize int `json:"cluster_size"`
	// ClusterASNs lists the other networks in the same cluster.
	ClusterASNs []topo.ASN `json:"cluster_asns"`
	// ConfigsObserved is in how many configurations the candidate's
	// catchment was known.
	ConfigsObserved int `json:"configs_observed"`
	// ConfigsWithTraffic is in how many of those its ingress link
	// carried spoofed traffic — the correlation that kept it a
	// candidate.
	ConfigsWithTraffic int `json:"configs_with_traffic"`
	// MeanVolumeShare is the average fraction of per-configuration
	// spoofed volume arriving on the candidate's links.
	MeanVolumeShare float64 `json:"mean_volume_share"`
}

// Report is a full localization evidence report.
type Report struct {
	// GeneratedAt stamps the report.
	GeneratedAt time.Time `json:"generated_at"`
	// Configurations is the campaign length correlated over.
	Configurations int `json:"configurations"`
	// SourcesAnalyzed is the size of the source universe.
	SourcesAnalyzed int `json:"sources_analyzed"`
	// Candidates, strongest evidence first.
	Candidates []Candidate `json:"candidates"`
}

// Input bundles what Build needs.
type Input struct {
	// Sources maps source positions to dense AS indices.
	Sources []int
	// ASNOf resolves a dense index to its ASN.
	ASNOf func(int) topo.ASN
	// Catchments is the campaign's per-config source catchments.
	Catchments [][]bgp.LinkID
	// Volumes is the measured per-config, per-link spoofed volume.
	Volumes [][]float64
	// Partition is the final cluster partition.
	Partition *cluster.Partition
	// CandidateIndexes are the source positions surviving correlation.
	CandidateIndexes []int
	// Now stamps the report (defaults to time.Now).
	Now time.Time
}

// Build assembles the evidence report.
func Build(in Input) (*Report, error) {
	if len(in.Catchments) != len(in.Volumes) {
		return nil, fmt.Errorf("report: %d catchment rows, %d volume rows", len(in.Catchments), len(in.Volumes))
	}
	now := in.Now
	if now.IsZero() {
		now = time.Now()
	}
	rep := &Report{
		GeneratedAt:     now,
		Configurations:  len(in.Catchments),
		SourcesAnalyzed: len(in.Sources),
	}
	members := in.Partition.Members()
	for _, k := range in.CandidateIndexes {
		c := Candidate{ASN: in.ASNOf(in.Sources[k])}
		cl := in.Partition.ClusterOf(k)
		c.ClusterSize = len(members[cl])
		for _, other := range members[cl] {
			if other != k {
				c.ClusterASNs = append(c.ClusterASNs, in.ASNOf(in.Sources[other]))
			}
		}
		shareSum := 0.0
		for cc := range in.Catchments {
			l := in.Catchments[cc][k]
			if l == bgp.NoLink {
				continue
			}
			c.ConfigsObserved++
			total := 0.0
			for _, v := range in.Volumes[cc] {
				total += v
			}
			if int(l) < len(in.Volumes[cc]) && in.Volumes[cc][l] > 0 {
				c.ConfigsWithTraffic++
				if total > 0 {
					shareSum += in.Volumes[cc][l] / total
				}
			}
		}
		if c.ConfigsObserved > 0 {
			c.MeanVolumeShare = shareSum / float64(c.ConfigsObserved)
		}
		rep.Candidates = append(rep.Candidates, c)
	}
	// Strongest evidence first: higher volume share, then smaller
	// cluster (tighter localization), then ASN for determinism.
	sortCandidates(rep.Candidates)
	return rep, nil
}

func sortCandidates(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && candidateLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func candidateLess(a, b Candidate) bool {
	if a.MeanVolumeShare != b.MeanVolumeShare {
		return a.MeanVolumeShare > b.MeanVolumeShare
	}
	if a.ClusterSize != b.ClusterSize {
		return a.ClusterSize < b.ClusterSize
	}
	return a.ASN < b.ASN
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the report as an operator-readable summary.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Spoofed-traffic localization report (%s)\n", r.GeneratedAt.Format(time.RFC3339))
	fmt.Fprintf(&sb, "correlated %d configurations over %d source networks\n",
		r.Configurations, r.SourcesAnalyzed)
	fmt.Fprintf(&sb, "%d candidate network(s):\n", len(r.Candidates))
	for _, c := range r.Candidates {
		fmt.Fprintf(&sb, "  AS%-8d volume share %.1f%%  traffic in %d/%d observed configs  cluster of %d",
			c.ASN, c.MeanVolumeShare*100, c.ConfigsWithTraffic, c.ConfigsObserved, c.ClusterSize)
		if len(c.ClusterASNs) > 0 && len(c.ClusterASNs) <= 5 {
			fmt.Fprintf(&sb, " (with")
			for _, a := range c.ClusterASNs {
				fmt.Fprintf(&sb, " AS%d", a)
			}
			fmt.Fprintf(&sb, ")")
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}
