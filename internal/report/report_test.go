package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/topo"
)

// fixture builds a 4-source scenario: sources 0,1 share a cluster;
// source 2 is the attacker (all volume follows its catchment).
func fixture() Input {
	catchments := [][]bgp.LinkID{
		{0, 0, 1, bgp.NoLink},
		{1, 1, 0, 0},
	}
	volumes := [][]float64{
		{0, 5}, // config 0: all volume on link 1 (source 2's catchment)
		{5, 0}, // config 1: all volume on link 0
	}
	part := cluster.New(4)
	for _, row := range catchments {
		part.Refine(row)
	}
	return Input{
		Sources:          []int{10, 11, 12, 13},
		ASNOf:            func(i int) topo.ASN { return topo.ASN(i * 100) },
		Catchments:       catchments,
		Volumes:          volumes,
		Partition:        part,
		CandidateIndexes: []int{2, 0},
		Now:              time.Unix(1700000000, 0).UTC(),
	}
}

func TestBuildEvidence(t *testing.T) {
	rep, err := Build(fixture())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Configurations != 2 || rep.SourcesAnalyzed != 4 {
		t.Fatalf("header %+v", rep)
	}
	if len(rep.Candidates) != 2 {
		t.Fatalf("got %d candidates", len(rep.Candidates))
	}
	// Source 2 (AS1200) carried 100% of volume in both configs and must
	// rank first.
	first := rep.Candidates[0]
	if first.ASN != 1200 {
		t.Fatalf("first candidate AS%d, want AS1200", first.ASN)
	}
	if first.ConfigsObserved != 2 || first.ConfigsWithTraffic != 2 {
		t.Fatalf("evidence counts %+v", first)
	}
	if first.MeanVolumeShare != 1.0 {
		t.Fatalf("volume share %v, want 1.0", first.MeanVolumeShare)
	}
	if first.ClusterSize != 1 || len(first.ClusterASNs) != 0 {
		t.Fatalf("cluster info %+v", first)
	}
	// Source 0 shares a cluster with source 1.
	second := rep.Candidates[1]
	if second.ASN != 1000 || second.ClusterSize != 2 {
		t.Fatalf("second candidate %+v", second)
	}
	if len(second.ClusterASNs) != 1 || second.ClusterASNs[0] != 1100 {
		t.Fatalf("cluster mates %v", second.ClusterASNs)
	}
}

func TestBuildValidatesInput(t *testing.T) {
	in := fixture()
	in.Volumes = in.Volumes[:1]
	if _, err := Build(in); err == nil {
		t.Fatal("mismatched rows accepted")
	}
}

func TestRenderText(t *testing.T) {
	rep, err := Build(fixture())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "AS1200") || !strings.Contains(s, "cluster of 1") {
		t.Fatalf("text render missing evidence:\n%s", s)
	}
	if !strings.Contains(s, "2023-11-14") {
		t.Fatalf("timestamp missing:\n%s", s)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep, err := Build(fixture())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Candidates) != 2 || got.Candidates[0].ASN != 1200 {
		t.Fatalf("JSON round trip lost data: %+v", got)
	}
}

func TestCandidateOrdering(t *testing.T) {
	cs := []Candidate{
		{ASN: 3, MeanVolumeShare: 0.5, ClusterSize: 1},
		{ASN: 1, MeanVolumeShare: 0.9, ClusterSize: 5},
		{ASN: 2, MeanVolumeShare: 0.9, ClusterSize: 2},
	}
	sortCandidates(cs)
	if cs[0].ASN != 2 || cs[1].ASN != 1 || cs[2].ASN != 3 {
		t.Fatalf("order %v %v %v", cs[0].ASN, cs[1].ASN, cs[2].ASN)
	}
}
