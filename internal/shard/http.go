package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HTTP wire protocol for the multi-process deployment: the controller
// speaks JSON POST to each shard's /shard/collect, /shard/apply, and
// /shard/hello. Term fencing maps to 409 Conflict (not retryable);
// everything else — connection refused, 5xx, timeouts — is retryable
// and lands in the controller's backoff loop like an injected
// partition.

// NodeHandler serves a shard node's RPC surface on an http.ServeMux.
func NodeHandler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/collect", func(w http.ResponseWriter, r *http.Request) {
		var req CollectRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		resp, err := n.HandleCollect(req)
		writeRPC(w, resp, err)
	})
	mux.HandleFunc("/shard/apply", func(w http.ResponseWriter, r *http.Request) {
		var u EpochUpdate
		if !decodeRPC(w, r, &u) {
			return
		}
		resp, err := n.HandleApply(u)
		writeRPC(w, resp, err)
	})
	mux.HandleFunc("/shard/hello", func(w http.ResponseWriter, r *http.Request) {
		var req HelloRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		resp, err := n.HandleHello(req)
		writeRPC(w, resp, err)
	})
	return mux
}

func decodeRPC(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeRPC(w http.ResponseWriter, v any, err error) {
	if err != nil {
		code := http.StatusServiceUnavailable
		if errors.Is(err, ErrStaleTerm) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// HTTPTransport is the controller's client side: shard ids map to base
// URLs, each RPC is one JSON POST with a per-call timeout.
type HTTPTransport struct {
	client *http.Client

	mu    sync.Mutex
	peers map[string]string // id -> base URL
}

// NewHTTPTransport builds an HTTP transport (timeout <= 0 means 5s).
func NewHTTPTransport(timeout time.Duration) *HTTPTransport {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &HTTPTransport{
		client: &http.Client{Timeout: timeout},
		peers:  make(map[string]string),
	}
}

// Register maps a shard id to its base URL (e.g. http://127.0.0.1:8181).
func (t *HTTPTransport) Register(id, baseURL string) {
	t.mu.Lock()
	t.peers[id] = baseURL
	t.mu.Unlock()
}

func (t *HTTPTransport) post(node, path string, req, resp any) error {
	t.mu.Lock()
	base := t.peers[node]
	t.mu.Unlock()
	if base == "" {
		return fmt.Errorf("%w: %s not registered", ErrUnavailable, node)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := t.client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnavailable, node, err)
	}
	defer hr.Body.Close()
	if hr.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		return fmt.Errorf("%w: %s: %s", ErrStaleTerm, node, bytes.TrimSpace(msg))
	}
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		return fmt.Errorf("%w: %s: http %d: %s", ErrUnavailable, node, hr.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(io.LimitReader(hr.Body, 64<<20)).Decode(resp)
}

// Collect implements Transport.
func (t *HTTPTransport) Collect(node string, req CollectRequest) (CollectResponse, error) {
	var resp CollectResponse
	err := t.post(node, "/shard/collect", req, &resp)
	return resp, err
}

// Apply implements Transport.
func (t *HTTPTransport) Apply(node string, u EpochUpdate) (ApplyResponse, error) {
	var resp ApplyResponse
	err := t.post(node, "/shard/apply", u, &resp)
	return resp, err
}

// Hello implements Transport.
func (t *HTTPTransport) Hello(node string, req HelloRequest) (HelloResponse, error) {
	var resp HelloResponse
	err := t.post(node, "/shard/hello", req, &resp)
	return resp, err
}
