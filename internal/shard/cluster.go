package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/fault"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/stream"
)

// ClusterConfig builds an in-process sharded-ingest cluster: N relay
// nodes, a LocalTransport network (with injected faults), a MemLease
// election substrate on a controllable clock, and 1+Standbys
// controllers competing for it. It is both the chaos harness and the
// single-process deployment mode of cmd/spooftrackd.
type ClusterConfig struct {
	// Shards is the node count (>= 1).
	Shards int
	// Attr / Eval / MinRoundPackets are the shared attribution contract —
	// identical to what a single-node pipeline would run.
	Attr            stream.Attribution
	Eval            stream.EvalParams
	MinRoundPackets int64
	// Pipe is the per-node pipeline base configuration (Relay is forced,
	// Ledger is stripped — only the controller writes provenance).
	Pipe stream.Config
	// Standbys is how many extra controllers wait on the lease (default 1).
	Standbys int
	// Injector drives event drops, RPC partitions, shard crashes, and
	// split-brain lease flaps. Nil = fault-free.
	Injector *fault.Injector
	// Retry / EvictAfter / DrainAfter / LeaseTTL pass through to the
	// controllers.
	Retry      RetryPolicy
	EvictAfter int
	DrainAfter int
	LeaseTTL   time.Duration
	// Ready supplies a per-shard readiness gate (nil = always ready).
	Ready func(id string) func() bool
	// Blocked / Remeasure pass through to the controllers (quarantine
	// mask, probe-conflict re-measurement hints).
	Blocked   func() []bool
	Remeasure func() []int
	// Ledger / Metrics wire the active controller's provenance and
	// instrumentation.
	Ledger  *provenance.Ledger
	Metrics *metrics.Registry
}

// Cluster wires nodes, transport, lease, and controllers together and
// drives them in rounds: Ingest routes events through the live ring,
// Quiesce drains the pipelines, Step runs one controller round
// (electing a leader as needed), and the Kill*/Isolate hooks inject the
// permanent failures the chaos suite asserts against.
type Cluster struct {
	cfg       ClusterConfig
	nodes     map[string]*Node
	order     []string
	transport *LocalTransport
	lease     *MemLease
	ctrls     []*Controller
	dead      []bool

	clockBase time.Time
	clockOff  atomic.Int64

	// Ingest fast path: an immutable route snapshot (ring plus node and
	// counter slices in ring-member order, refreshed after every
	// controller step, when membership can change) keeps the sharded
	// ingest path lock-free and string-free — within a few percent of a
	// bare pipeline Ingest.
	route   atomic.Pointer[ingestRoute]
	routed  map[string]*atomic.Int64
	dropped atomic.Int64

	mu     sync.Mutex
	active int
	round  int
}

// ingestRoute is one immutable routing snapshot: nodes and routed
// counters are indexed by Ring.OwnerIndex.
type ingestRoute struct {
	ring   *Ring
	nodes  []*Node
	routed []*atomic.Int64
}

// NewCluster builds and starts the cluster (nodes running, no leader
// elected yet — the first Step elects one).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one shard")
	}
	if cfg.Standbys < 0 {
		cfg.Standbys = 0
	}
	if cfg.Standbys == 0 {
		cfg.Standbys = 1
	}
	c := &Cluster{
		cfg:       cfg,
		nodes:     make(map[string]*Node),
		transport: NewLocalTransport(cfg.Injector),
		lease:     NewMemLease(),
		routed:    make(map[string]*atomic.Int64),
		clockBase: time.Unix(1700000000, 0),
	}
	c.lease.SetClock(func() time.Time { return c.clockBase.Add(time.Duration(c.clockOff.Load())) })
	if cfg.Injector != nil {
		c.lease.SetInjector(cfg.Injector)
	}
	for i := 0; i < cfg.Shards; i++ {
		id := fmt.Sprintf("shard-%d", i)
		pc := cfg.Pipe
		pc.Ledger = nil // only the controller writes provenance
		var ready func() bool
		if cfg.Ready != nil {
			ready = cfg.Ready(id)
		}
		n, err := NewNode(NodeConfig{ID: id, Attr: cfg.Attr, Pipe: pc, Ready: ready})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[id] = n
		c.order = append(c.order, id)
		c.routed[id] = &atomic.Int64{}
		c.transport.Register(n)
	}
	for i := 0; i < 1+cfg.Standbys; i++ {
		ct, err := NewController(ControllerConfig{
			ID:              fmt.Sprintf("ctrl-%d", i),
			Attr:            cfg.Attr,
			Eval:            cfg.Eval,
			MinRoundPackets: cfg.MinRoundPackets,
			Members:         c.order,
			Transport:       c.transport,
			Lease:           c.lease,
			LeaseTTL:        cfg.LeaseTTL,
			Retry:           cfg.Retry,
			EvictAfter:      cfg.EvictAfter,
			DrainAfter:      cfg.DrainAfter,
			Blocked:         cfg.Blocked,
			Remeasure:       cfg.Remeasure,
			Ledger:          cfg.Ledger,
			Metrics:         cfg.Metrics,
			Sleep:           func(time.Duration) {}, // in-process: no real backoff sleeps
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.ctrls = append(c.ctrls, ct)
		c.dead = append(c.dead, false)
	}
	c.setRoute(c.ctrls[0].Ring())
	return c, nil
}

// setRoute publishes a new routing snapshot for the given ring.
func (c *Cluster) setRoute(ring *Ring) {
	rt := &ingestRoute{ring: ring}
	for _, id := range ring.Members() {
		rt.nodes = append(rt.nodes, c.nodes[id])
		rt.routed = append(rt.routed, c.routed[id])
	}
	c.route.Store(rt)
}

// Controller returns the currently active (or most recently active)
// controller.
func (c *Cluster) Controller() *Controller {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrls[c.active]
}

// Nodes returns the shard ids in order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.order...) }

// Ingest routes one event: the injector's drop roll first (so the drop
// schedule is identical at every shard count), then consistent-hash by
// true source AS through the live ring. The path is lock-free.
func (c *Cluster) Ingest(ev amp.Event) bool {
	if c.cfg.Injector != nil && c.cfg.Injector.DropEvent() {
		c.dropped.Add(1)
		return false
	}
	rt := c.route.Load()
	i := rt.ring.OwnerIndex(ev.TrueSrcAS)
	if i < 0 {
		return false
	}
	n := rt.nodes[i]
	if n == nil || !n.Ingest(ev) {
		return false
	}
	rt.routed[i].Add(1)
	return true
}

// Quiesce waits until every live shard has flushed all routed events
// into its shared round state, so a following Step collects a complete,
// deterministic round. Crashed shards are skipped (their uncollected
// events are the explicit loss the eviction path accounts).
func (c *Cluster) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		lagging := ""
		for _, id := range c.order {
			n := c.nodes[id]
			if n.Crashed() {
				continue
			}
			want := c.routed[id].Load()
			if n.Pipeline().TotalEvents() < want {
				lagging = id
				break
			}
		}
		if lagging == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: quiesce timed out waiting for %s", lagging)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// AdvanceClock moves the lease clock forward (expiring leases when d
// exceeds the remaining TTL).
func (c *Cluster) AdvanceClock(d time.Duration) {
	c.clockOff.Add(int64(d))
}

// Step runs one controller round: roll permanent shard-crash faults,
// ensure a leader (electing across controllers as needed — the
// mid-campaign failover path), and step it. Election retries across
// abdications (split-brain renewals) until a controller both leads and
// completes the round.
func (c *Cluster) Step(final bool) (StepResult, error) {
	// Shard-crash rolls are per (node, round): permanent once hit.
	c.mu.Lock()
	round := c.round
	c.round++
	c.mu.Unlock()
	if c.cfg.Injector != nil {
		for _, id := range c.order {
			n := c.nodes[id]
			if !n.Crashed() && c.cfg.Injector.ShardCrash(id, round) {
				n.Crash()
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < 4*(len(c.ctrls)+1); attempt++ {
		ct := c.leader()
		if ct == nil {
			lastErr = ErrNotLeader
			continue
		}
		res, err := ct.Step(final)
		// Membership can change inside a step (drain, evict): refresh the
		// ingest route snapshot before anything else routes.
		c.setRoute(ct.Ring())
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNotLeader) {
			return res, err
		}
		lastErr = err
	}
	return StepResult{}, fmt.Errorf("shard: no controller could complete the round: %w", lastErr)
}

// leader returns a leading controller, electing one if none leads.
// Election order rotates from the last active controller so a failover
// lands on a standby.
func (c *Cluster) leader() *Controller {
	c.mu.Lock()
	start := c.active
	c.mu.Unlock()
	n := len(c.ctrls)
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if c.dead[idx] {
			continue
		}
		ct := c.ctrls[idx]
		if ct.Leading() {
			c.setActive(idx)
			return ct
		}
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if c.dead[idx] {
			continue
		}
		ct := c.ctrls[idx]
		if ct.TryLead() == nil {
			c.setActive(idx)
			return ct
		}
	}
	return nil
}

func (c *Cluster) setActive(idx int) {
	c.mu.Lock()
	c.active = idx
	c.mu.Unlock()
}

// KillController crashes the active controller: it is removed from
// rotation without releasing its lease (a crash, not a clean shutdown),
// and the lease clock jumps past the TTL so the next Step's election
// succeeds. Returns the killed controller's id.
func (c *Cluster) KillController() string {
	c.mu.Lock()
	idx := c.active
	c.dead[idx] = true
	c.mu.Unlock()
	ttl := c.cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	c.AdvanceClock(ttl + time.Second)
	return c.ctrls[idx].cfg.ID
}

// KillShard permanently crashes a shard node.
func (c *Cluster) KillShard(id string) {
	if n := c.nodes[id]; n != nil {
		n.Crash()
	}
}

// Isolate switches a permanent network partition for a shard on or off.
func (c *Cluster) Isolate(id string, on bool) {
	c.transport.Isolate(id, on)
}

// Dropped returns how many events the injector dropped before routing.
func (c *Cluster) Dropped() int64 { return c.dropped.Load() }

// Close stops every controller and node.
func (c *Cluster) Close() {
	for _, ct := range c.ctrls {
		ct.Stop()
	}
	for _, n := range c.nodes {
		n.Close()
	}
}
