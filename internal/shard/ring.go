package shard

import (
	"sort"
)

// Ring is an immutable consistent-hash ring mapping true source ASNs to
// ingest shard ids. Border taps know the true source AS of every tapped
// packet (amp.Event.TrueSrcAS), so hashing on it keeps each source's
// entire event stream on one shard — per-source counters never split
// across nodes, and removing a shard re-homes only the sources it
// owned. Immutability makes membership changes race-free by
// construction: the controller publishes a new ring (Without) instead
// of mutating the old one under readers.
type Ring struct {
	ids    []string
	points []ringPoint
	// tab quantizes the ring into 2^ringTableBits equal hash buckets,
	// each pre-resolved to its successor point's owner, so the packet
	// path pays one hash and one table index instead of a binary search.
	// Ownership is bucket-granular but still consistent: a bucket's
	// owner changes only when the point it resolved to leaves the ring.
	tab []int32
}

// ringTableBits sizes the owner lookup table (4096 buckets: 32 KiB,
// fine-grained enough that every virtual node owns buckets at any
// realistic shard count).
const ringTableBits = 12

type ringPoint struct {
	hash uint64
	idx  int // into ids
}

// DefaultRingReplicas is the number of virtual nodes per shard —
// enough that removing one shard spreads its range across all
// survivors instead of dumping it on one neighbor.
const DefaultRingReplicas = 64

// NewRing builds a ring over the given shard ids. replicas <= 0 uses
// DefaultRingReplicas. Duplicate ids are rejected by collapsing: the
// ids slice is deduplicated and sorted, so rings built from the same
// member set are identical regardless of order.
func NewRing(ids []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	seen := make(map[string]bool, len(ids))
	uniq := make([]string, 0, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sort.Strings(uniq)
	r := &Ring{ids: uniq, points: make([]ringPoint, 0, len(uniq)*replicas)}
	for i, id := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(id, uint64(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return r.ids[pa.idx] < r.ids[pb.idx]
	})
	if len(r.points) > 0 {
		r.tab = make([]int32, 1<<ringTableBits)
		for j := range r.tab {
			h := uint64(j) << (64 - ringTableBits)
			i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
			if i == len(r.points) {
				i = 0
			}
			r.tab[j] = int32(r.points[i].idx)
		}
	}
	return r
}

// ringHash is FNV-1a 64 over the id bytes, salted per virtual node with
// a SplitMix64 finalizer so adjacent vnode indexes decorrelate.
func ringHash(id string, salt uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	h ^= salt * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the shard owning the true source AS, or "" on an empty
// ring.
func (r *Ring) Owner(as uint32) string {
	i := r.OwnerIndex(as)
	if i < 0 {
		return ""
	}
	return r.ids[i]
}

// OwnerIndex returns the owning shard's index into Members() order
// (sorted ids), or -1 on an empty ring. This is the ingest fast path:
// one hash, one table load, no string handling.
func (r *Ring) OwnerIndex(as uint32) int {
	if r == nil || len(r.tab) == 0 {
		return -1
	}
	h := ringHash("", uint64(as)|1<<40)
	return int(r.tab[h>>(64-ringTableBits)])
}

// Without returns a new ring with the shard removed — the re-hash step
// when a shard is drained or evicted. Removing an absent id returns an
// equivalent ring.
func (r *Ring) Without(id string) *Ring {
	kept := make([]string, 0, len(r.ids))
	for _, m := range r.ids {
		if m != id {
			kept = append(kept, m)
		}
	}
	replicas := 0
	if len(r.ids) > 0 {
		replicas = len(r.points) / len(r.ids)
	}
	return NewRing(kept, replicas)
}

// Members returns the shard ids on the ring, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.ids...)
}

// Size returns the number of shards on the ring.
func (r *Ring) Size() int { return len(r.ids) }
