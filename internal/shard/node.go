package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spooftrack/internal/amp"
	"spooftrack/internal/stream"
)

// NodeConfig builds one ingest shard.
type NodeConfig struct {
	// ID is the shard's cluster-unique id (ring membership key).
	ID string
	// Attr is the shared attribution matrix — identical on every node
	// and on the controller.
	Attr stream.Attribution
	// Pipe tunes the wrapped pipeline. Relay is forced on: a shard never
	// folds locally. Deploy, Shed, DegradedRecovery, Metrics, and Ledger
	// wire through unchanged.
	Pipe stream.Config
	// Ready is the membership gate the controller polls on every
	// collect: false asks to be drained. Wire it to
	// watch.Watchdog.ReadyFunc (the /readyz + SLO signal). nil = always
	// ready.
	Ready func() bool
}

// Node is one ingest shard: the existing stream.Pipeline in relay mode
// plus the RPC surface the controller drives (collect / apply / hello)
// with lease-term fencing.
type Node struct {
	id    string
	pipe  *stream.Pipeline
	ready func() bool

	mu   sync.Mutex
	term uint64 // highest lease term seen; lower terms are rejected
	last *EpochUpdate

	crashed atomic.Bool
}

// NewNode builds a shard node and starts its relay pipeline.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("shard: node needs an ID")
	}
	pc := cfg.Pipe
	pc.Relay = true
	pipe, err := stream.New(cfg.Attr, pc)
	if err != nil {
		return nil, fmt.Errorf("shard: node %s: %w", cfg.ID, err)
	}
	return &Node{id: cfg.ID, pipe: pipe, ready: cfg.Ready}, nil
}

// ID returns the shard id.
func (n *Node) ID() string { return n.id }

// Pipeline exposes the wrapped relay pipeline (ingest wiring, status).
func (n *Node) Pipeline() *stream.Pipeline { return n.pipe }

// Ingest feeds one event into the shard's pipeline.
func (n *Node) Ingest(ev amp.Event) bool {
	if n.crashed.Load() {
		return false
	}
	return n.pipe.Ingest(ev)
}

// Crash simulates a permanent shard death: RPCs stop answering and
// ingest stops accepting. The chaos harness's shard-crash and the
// KillShard test hook land here.
func (n *Node) Crash() { n.crashed.Store(true) }

// Crashed reports whether the node has been crashed.
func (n *Node) Crashed() bool { return n.crashed.Load() }

// Close shuts the pipeline down.
func (n *Node) Close() { n.pipe.Close() }

// isReady evaluates the membership gate.
func (n *Node) isReady() bool {
	if n.crashed.Load() {
		return false
	}
	if n.ready == nil {
		return true
	}
	return n.ready()
}

// fence rejects terms below the highest seen and adopts higher ones.
func (n *Node) fence(term uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term < n.term {
		return fmt.Errorf("%w: node %s saw term %d, got %d", ErrStaleTerm, n.id, n.term, term)
	}
	n.term = term
	return nil
}

// HandleCollect serves the controller's counter collection.
func (n *Node) HandleCollect(req CollectRequest) (CollectResponse, error) {
	if n.crashed.Load() {
		return CollectResponse{}, fmt.Errorf("%w: node %s crashed", ErrUnavailable, n.id)
	}
	if err := n.fence(req.Term); err != nil {
		return CollectResponse{}, err
	}
	return CollectResponse{
		Node:    n.id,
		Harvest: n.pipe.HarvestRound(),
		Ready:   n.isReady(),
	}, nil
}

// HandleApply adopts a controller epoch update: reset round counters,
// bump the epoch (invalidating in-flight worker batches), deploy the
// configuration, and remember the update for failover recovery.
func (n *Node) HandleApply(u EpochUpdate) (ApplyResponse, error) {
	if n.crashed.Load() {
		return ApplyResponse{}, fmt.Errorf("%w: node %s crashed", ErrUnavailable, n.id)
	}
	if err := n.fence(u.Term); err != nil {
		return ApplyResponse{}, err
	}
	if err := n.pipe.AdvanceEpoch(u.Epoch, u.Config); err != nil {
		return ApplyResponse{}, fmt.Errorf("shard: node %s: %w", n.id, err)
	}
	n.mu.Lock()
	cp := u
	n.last = &cp
	n.mu.Unlock()
	return ApplyResponse{Node: n.id, Epoch: u.Epoch}, nil
}

// HandleHello serves failover recovery: the shard's last applied update.
func (n *Node) HandleHello(req HelloRequest) (HelloResponse, error) {
	if n.crashed.Load() {
		return HelloResponse{}, fmt.Errorf("%w: node %s crashed", ErrUnavailable, n.id)
	}
	if err := n.fence(req.Term); err != nil {
		return HelloResponse{}, err
	}
	resp := HelloResponse{Node: n.id, Ready: n.isReady(), Epoch: n.pipe.Epoch()}
	n.mu.Lock()
	if n.last != nil {
		resp.HasUpdate = true
		resp.Update = *n.last
	}
	n.mu.Unlock()
	return resp, nil
}
