// Package shard is the horizontally sharded ingest tier: N shard nodes
// — each wrapping the existing stream.Pipeline in relay mode,
// consistent-hashed by true source AS — feed one lease-elected
// controller that merges per-shard link counters into the same greedy
// reconfiguration loop the single-node pipeline runs (stream.Evaluator)
// and broadcasts catchment-table epochs back out.
//
// The design leans on three invariants:
//
//  1. Counters are integers and collection is non-consuming. A shard's
//     HarvestRound snapshots its round counters without resetting them;
//     only an epoch advance (the controller's Apply broadcast) resets.
//     Integer sums are order-independent, so however collects,
//     retries, and re-collections interleave, the merged round the
//     controller folds is exactly the multiset of events the shards
//     admitted — which is what makes localization byte-identical to a
//     single-node run at any shard count.
//
//  2. Epochs gate everything and terms fence everyone. A worker batch
//     flushed under a stale epoch is excluded (the pipeline's existing
//     snapshot protocol); a shard collected at the wrong epoch is
//     re-applied and re-collected; an RPC from a controller whose lease
//     term is below the highest a shard has seen is rejected outright
//     (ErrStaleTerm), so a deposed controller cannot rewind the tier.
//
//  3. Failure is explicit, never silent. A round the controller cannot
//     collect completely is deferred, not folded partially — events
//     keep accumulating under the old epoch and the next complete
//     collect includes them. A shard lost permanently is evicted: its
//     uncollected counters are the only data loss, the controller
//     latches a degraded flag, freezes further reconfiguration, and the
//     surviving partition is provably a coarsening (a refinement
//     prefix) of the fault-free run — the same contract
//     core.DegradeOnExhaust gives the offline campaign.
package shard

import (
	"errors"

	"spooftrack/internal/stream"
)

// ErrStaleTerm rejects an RPC from a controller whose lease term is
// below the highest term the receiving shard has observed — the fencing
// that makes split-brain a clean abdication instead of two live
// controllers. Not retryable.
var ErrStaleTerm = errors.New("shard: stale controller term")

// ErrUnavailable marks a node that is not answering at all (crashed or
// unregistered). Retryable — the retry budget decides when it becomes a
// round failure.
var ErrUnavailable = errors.New("shard: node unavailable")

// ErrPartitioned marks a transient injected network partition on an RPC
// edge. Retryable: every attempt re-rolls, so backoff heals it.
var ErrPartitioned = errors.New("shard: rpc partitioned")

// ErrNotLeader is returned by Controller.Step when the caller does not
// currently hold the leadership lease (never led, or just abdicated).
var ErrNotLeader = errors.New("shard: not the lease holder")

// CollectRequest asks a shard for its current round-counter snapshot.
type CollectRequest struct {
	// Term is the controller's lease term (fenced).
	Term uint64 `json:"term"`
	// Epoch is the epoch the controller believes the shard accumulates
	// under; the response carries the shard's actual epoch so the
	// controller can re-apply a lagging shard.
	Epoch int64 `json:"epoch"`
}

// CollectResponse is a shard's harvest plus its membership signals.
type CollectResponse struct {
	Node    string         `json:"node"`
	Harvest stream.Harvest `json:"harvest"`
	// Ready is the shard's membership gate (/readyz + SLO rules): false
	// means the shard asks to be drained — it is still reachable and its
	// counters are still collected, so draining loses nothing.
	Ready bool `json:"ready"`
}

// EpochUpdate is the controller's broadcast: the new epoch, the
// configuration to deploy, the live membership, and the controller's
// full evaluator snapshot. Shards store the last update they applied
// and return it from Hello, which is the failover recovery protocol: a
// newly elected controller restores the highest-epoch snapshot any
// shard holds and replays it through stream.RestoreEvaluator — state
// recovery is deterministic refolding, not trust in a dead leader.
type EpochUpdate struct {
	Term     uint64              `json:"term"`
	Epoch    int64               `json:"epoch"`
	Config   int                 `json:"config"`
	Members  []string            `json:"members"`
	Snapshot stream.EvalSnapshot `json:"snapshot"`
	// Degraded is the controller's explicit coarsening latch: true once
	// any round data was permanently lost (shard eviction).
	Degraded bool `json:"degraded,omitempty"`
}

// ApplyResponse acknowledges an EpochUpdate.
type ApplyResponse struct {
	Node  string `json:"node"`
	Epoch int64  `json:"epoch"`
}

// HelloRequest introduces a (possibly newly elected) controller.
type HelloRequest struct {
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
}

// HelloResponse reports the shard's last applied update for failover
// recovery.
type HelloResponse struct {
	Node      string      `json:"node"`
	Ready     bool        `json:"ready"`
	Epoch     int64       `json:"epoch"`
	HasUpdate bool        `json:"has_update"`
	Update    EpochUpdate `json:"update,omitempty"`
}
