package shard

import (
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/stream"
)

// BenchmarkShardIngest compares the per-event cost of the sharded
// ingest path (deterministic drop roll skipped — no injector — then
// consistent-hash ring lookup, shard dispatch, relay accumulate) against
// a bare single-node pipeline Ingest on the same event stream. The
// worker budget is equal on both sides (4 total). scripts/bench.sh
// gates the ratio at 1.10x, min over -count runs, so the sharding tier
// cannot silently grow a lock or an allocation on the packet path.
func BenchmarkShardIngest(b *testing.B) {
	attr := chaosAttr()
	events := benchEvents(attr, 1024)

	b.Run("single-node", func(b *testing.B) {
		p, err := stream.New(attr, stream.Config{
			Workers:         4,
			QueueDepth:      1 << 16,
			BatchSize:       256,
			FlushInterval:   10 * time.Millisecond,
			EvalInterval:    10 * time.Millisecond,
			MinRoundPackets: 1 << 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Ingest(events[i%len(events)])
		}
		b.StopTimer()
		p.Close()
		if got := p.TotalEvents(); got != int64(b.N) {
			b.Fatalf("accounted %d of %d events", got, b.N)
		}
	})

	b.Run("sharded-4", func(b *testing.B) {
		cl, err := NewCluster(ClusterConfig{
			Shards:          4,
			Attr:            attr,
			MinRoundPackets: 1 << 40,
			Pipe: stream.Config{
				Workers:       1,
				QueueDepth:    1 << 16,
				BatchSize:     256,
				FlushInterval: 10 * time.Millisecond,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.Ingest(events[i%len(events)])
		}
		b.StopTimer()
		if err := cl.Quiesce(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		total := int64(0)
		for _, id := range cl.Nodes() {
			total += cl.nodes[id].Pipeline().TotalEvents()
		}
		cl.Close()
		if total != int64(b.N) {
			b.Fatalf("accounted %d of %d events", total, b.N)
		}
	})
}

// BenchmarkShardMergeRound measures one controller round on a 4-shard
// cluster with no pending traffic: lease renewal, four collect RPCs,
// and the counter merge. This is the fixed per-round cost the
// controller amortizes over every event folded in that round.
func BenchmarkShardMergeRound(b *testing.B) {
	attr := chaosAttr()
	cl, err := NewCluster(ClusterConfig{
		Shards:          4,
		Attr:            attr,
		MinRoundPackets: 1 << 40,
		Pipe:            stream.Config{Workers: 1, BatchSize: 1, FlushInterval: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Step(false); err != nil {
		b.Fatal(err)
	}
	ct := cl.Controller()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ct.Step(false); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEvents pre-builds a cycling event stream spread across every
// source AS so the ring lookup sees realistic key diversity.
func benchEvents(attr stream.Attribution, n int) []amp.Event {
	events := make([]amp.Event, n)
	for i := range events {
		src := i % len(attr.SourceASNs)
		events[i] = chaosEvent(attr, src, attr.InitialConfig)
	}
	return events
}
