package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/stream"
)

// ControllerConfig builds the merge-and-decide controller.
type ControllerConfig struct {
	// ID identifies this controller instance in lease and ledger records.
	ID string
	// Attr is the shared attribution matrix (identical on every node).
	Attr stream.Attribution
	// Eval are the decision parameters — the same EvalParams a
	// single-node pipeline would run, which is the byte-identical
	// contract.
	Eval stream.EvalParams
	// MinRoundPackets gates folding a merged round (default 50, matching
	// stream.Config).
	MinRoundPackets int64
	// Members are the initial shard ids.
	Members []string
	// Transport carries the RPCs; Lease elects the leader.
	Transport Transport
	Lease     LeaseStore
	// LeaseTTL is the leadership lease duration (default 2s); a Step
	// renews it, and a refused renewal abdicates.
	LeaseTTL time.Duration
	// EvalInterval is Run's round cadence (default 200ms).
	EvalInterval time.Duration
	// Retry is the per-RPC retry/backoff schedule.
	Retry RetryPolicy
	// EvictAfter is how many consecutive failed-collect rounds evict a
	// shard (default 3); DrainAfter is how many consecutive not-ready
	// rounds drain one (default 2).
	EvictAfter int
	DrainAfter int
	// RingReplicas tunes the consistent-hash ring (default
	// DefaultRingReplicas).
	RingReplicas int
	// Blocked / Remeasure are the same per-evaluation callbacks the
	// single-node controller consults (quarantine mask, probe-conflict
	// hints).
	Blocked   func() []bool
	Remeasure func() []int
	// Ledger records rounds, reconfigurations, verdicts, membership and
	// failover transitions. Nil is provenance-off.
	Ledger *provenance.Ledger
	// Metrics instruments the controller (nil = private registry).
	Metrics *metrics.Registry
	// Sleep overrides backoff sleeping (tests).
	Sleep func(time.Duration)
}

func (c *ControllerConfig) setDefaults() {
	if c.MinRoundPackets <= 0 {
		c.MinRoundPackets = 50
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 200 * time.Millisecond
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3
	}
	if c.DrainAfter <= 0 {
		c.DrainAfter = 2
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	c.Retry.setDefaults()
}

// StepResult reports what one controller round did.
type StepResult struct {
	// Folded: a complete merged round was folded into the evaluator.
	Folded bool
	// Skipped: every shard answered but the merged round was below
	// MinRoundPackets; counters keep accumulating.
	Skipped bool
	// Deferred: at least one shard's collect failed past the retry
	// budget; nothing was folded and nothing was lost — counters keep
	// accumulating under the old epoch and the next complete collect
	// includes them.
	Deferred bool
	// Discarded: a shard was evicted and the partial round it took with
	// it was discarded entirely (epoch advanced without folding) — the
	// explicit data-loss event that latches the degraded flag.
	Discarded bool
	// Epoch after the step; Outcome is valid when Folded.
	Epoch   int64
	Outcome stream.Outcome
}

// MemberStatus is one shard's membership state for /cluster.
type MemberStatus struct {
	ID string `json:"id"`
	// State is "live", "drained", or "evicted".
	State string `json:"state"`
	// NotReady / Failed are the consecutive-round streak counters behind
	// drain and evict decisions.
	NotReady int `json:"not_ready,omitempty"`
	Failed   int `json:"failed,omitempty"`
}

// ClusterStatus is the controller's point-in-time view, shaped for the
// daemon's /cluster endpoint.
type ClusterStatus struct {
	Leader          string         `json:"leader"`
	Leading         bool           `json:"leading"`
	Term            uint64         `json:"term"`
	Epoch           int64          `json:"epoch"`
	Rounds          int            `json:"rounds"`
	DeferredRounds  int64          `json:"deferred_rounds"`
	DiscardedRounds int64          `json:"discarded_rounds"`
	Degraded        bool           `json:"degraded"`
	Converged       bool           `json:"converged"`
	CurrentConfig   int            `json:"current_config"`
	DeployedConfigs []int          `json:"deployed_configs"`
	NumClusters     int            `json:"num_clusters"`
	Candidates      int            `json:"candidates"`
	Members         []MemberStatus `json:"members"`
}

// Controller is the lease-elected merge-and-decide loop: collect every
// live shard's counters, merge, fold through the shared
// stream.Evaluator, broadcast the next epoch, and manage membership
// (drain on SLO breach, evict on unreachability) — with every
// transition fenced by the lease term and recorded in the ledger.
type Controller struct {
	cfg ControllerConfig

	mRounds    *metrics.Counter
	mDeferred  *metrics.Counter
	mDiscarded *metrics.Counter
	mRetries   *metrics.Counter
	mElections *metrics.Counter
	mAbdicate  *metrics.Counter
	mDrained   *metrics.Counter
	mEvicted   *metrics.Counter
	mMembers   *metrics.Gauge
	mEpoch     *metrics.Gauge
	mDegraded  *metrics.Gauge

	mu        sync.Mutex
	leading   bool
	term      uint64
	epoch     int64
	eval      *stream.Evaluator
	ring      *Ring
	members   []string // live, sorted
	drained   []string
	evicted   []string
	notReady  map[string]int
	failed    map[string]int
	degraded  bool
	frozen    bool
	deferred  int64
	discarded int64
	opened    bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewController validates the configuration and builds a follower (call
// TryLead or Run to elect).
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("shard: controller needs an ID")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("shard: controller needs members")
	}
	if cfg.Transport == nil || cfg.Lease == nil {
		return nil, fmt.Errorf("shard: controller needs a transport and a lease store")
	}
	if len(cfg.Attr.Catchments) == 0 || cfg.Attr.NumLinks <= 0 {
		return nil, fmt.Errorf("shard: controller needs a populated attribution matrix")
	}
	cfg.setDefaults()
	members := append([]string(nil), cfg.Members...)
	sort.Strings(members)
	ct := &Controller{
		cfg:      cfg,
		eval:     stream.NewEvaluator(cfg.Attr, cfg.Eval),
		ring:     NewRing(members, cfg.RingReplicas),
		members:  members,
		notReady: make(map[string]int),
		failed:   make(map[string]int),
		stop:     make(chan struct{}),
	}
	reg := cfg.Metrics
	ct.mRounds = reg.Counter("shard_rounds_total")
	ct.mDeferred = reg.Counter("shard_rounds_deferred_total")
	ct.mDiscarded = reg.Counter("shard_rounds_discarded_total")
	ct.mRetries = reg.Counter("shard_rpc_retries_total")
	ct.mElections = reg.Counter("shard_elections_total")
	ct.mAbdicate = reg.Counter("shard_abdications_total")
	ct.mDrained = reg.Counter("shard_drained_total")
	ct.mEvicted = reg.Counter("shard_evicted_total")
	ct.mMembers = reg.Gauge("shard_members")
	ct.mEpoch = reg.Gauge("shard_epoch")
	ct.mDegraded = reg.Gauge("shard_degraded")
	ct.mMembers.Set(float64(len(members)))
	return ct, nil
}

// Leading reports whether this controller currently believes it holds
// the lease.
func (ct *Controller) Leading() bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.leading
}

// Term returns the lease term this controller last led at.
func (ct *Controller) Term() uint64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.term
}

// Degraded reports the explicit coarsening latch: true once any round
// data was permanently lost to a shard eviction.
func (ct *Controller) Degraded() bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.degraded
}

// Evaluator exposes the controller's attribution state (read-only).
func (ct *Controller) Evaluator() *stream.Evaluator {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.eval
}

// Ring returns the current consistent-hash ring (ingest routing).
func (ct *Controller) Ring() *Ring {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.ring
}

// TryLead attempts to acquire the leadership lease and, on success,
// runs failover recovery: Hello every member, restore the evaluator
// from the highest-epoch snapshot any shard holds (deterministic replay
// through stream.RestoreEvaluator), adopt its membership, and
// re-broadcast at the new term so every shard is fenced and current.
func (ct *Controller) TryLead() error {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.leading {
		return nil
	}
	lease, ok := ct.cfg.Lease.Acquire(ct.cfg.ID, ct.cfg.LeaseTTL)
	if !ok {
		return fmt.Errorf("%w: lease held by %s at term %d", ErrNotLeader, lease.Holder, lease.Term)
	}
	ct.term = lease.Term
	ct.leading = true
	ct.mElections.Inc()
	led := ct.cfg.Ledger
	led.RecordFailover(provenance.FailoverEvent{
		Action: "elect", Leader: ct.cfg.ID, Term: ct.term, Epoch: ct.epoch,
	})
	ct.recoverLocked()
	return nil
}

// recoverLocked restores cluster state after election.
func (ct *Controller) recoverLocked() {
	led := ct.cfg.Ledger
	var best *EpochUpdate
	for _, m := range ct.members {
		resp, err := ct.helloLocked(m)
		if err != nil {
			continue
		}
		if resp.HasUpdate && (best == nil || resp.Update.Epoch > best.Epoch) {
			u := resp.Update
			best = &u
		}
	}
	if best != nil && best.Epoch >= ct.epoch && len(best.Snapshot.Deployed) > 0 {
		eval, err := stream.RestoreEvaluator(ct.cfg.Attr, ct.cfg.Eval, best.Snapshot)
		if err == nil {
			ct.eval = eval
			ct.epoch = best.Epoch
			ct.degraded = ct.degraded || best.Degraded
			ct.frozen = ct.frozen || best.Degraded
			ct.adoptMembersLocked(best.Members)
			led.RecordFailover(provenance.FailoverEvent{
				Action: "recover", Leader: ct.cfg.ID, Term: ct.term,
				Epoch: ct.epoch, Rounds: eval.Rounds(),
			})
			// Re-broadcast at our term: fences every shard and brings
			// laggards (shards that missed the dead leader's last apply)
			// up to the recovered epoch.
			ct.broadcastLocked(ct.mkUpdateLocked())
			ct.mEpoch.Set(float64(ct.epoch))
			return
		}
		led.RecordFailover(provenance.FailoverEvent{
			Action: "recover", Leader: ct.cfg.ID, Term: ct.term,
			Epoch: ct.epoch, Reason: fmt.Sprintf("snapshot rejected: %v", err),
		})
	}
	// Fresh cluster (no shard has applied an epoch yet): open the
	// provenance chain exactly like stream.New does, so the merged
	// loop's ledger replays with provenance.Replay unchanged.
	if !ct.opened && led.Enabled() {
		attr := ct.cfg.Attr
		par := ct.eval.Params() // defaults resolved
		led.RecordMeta(provenance.MetaEvent{
			Component:      "stream",
			NumSources:     len(attr.Catchments[0]),
			NumConfigs:     len(attr.Catchments),
			NumLinks:       attr.NumLinks,
			MaxMisses:      par.MaxMisses,
			SplitThreshold: par.SplitThreshold,
			NoiseFloor:     par.NoiseFloor,
			InitialConfig:  attr.InitialConfig,
		})
		for c, row := range attr.Catchments {
			led.RecordRowShared(provenance.RowEvent{Config: c, Catchment: row})
		}
		led.RecordDeploy(provenance.DeployEvent{Config: attr.InitialConfig, Attempts: 1, Phase: "initial"})
		for _, m := range ct.members {
			led.RecordMembership(provenance.MembershipEvent{
				Node: m, Action: "join", Epoch: ct.epoch, Term: ct.term,
			})
		}
	}
	ct.opened = true
}

// adoptMembersLocked replaces the live membership (failover recovery:
// the recovered update's member list already excludes drained/evicted
// shards).
func (ct *Controller) adoptMembersLocked(members []string) {
	if len(members) == 0 {
		return
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	ct.members = ms
	ct.ring = NewRing(ms, ct.cfg.RingReplicas)
	ct.mMembers.Set(float64(len(ms)))
}

// abdicateLocked steps down after a refused renewal or a fencing error.
func (ct *Controller) abdicateLocked(reason string) {
	if !ct.leading {
		return
	}
	ct.leading = false
	ct.mAbdicate.Inc()
	ct.cfg.Ledger.RecordFailover(provenance.FailoverEvent{
		Action: "abdicate", Leader: ct.cfg.ID, Term: ct.term,
		Epoch: ct.epoch, Reason: reason,
	})
}

// Step runs one controller round: renew the lease, collect every live
// shard (retry/backoff, epoch re-apply), merge, fold, broadcast the
// next epoch, and apply pending membership transitions. Returns
// ErrNotLeader when not (or no longer) holding the lease.
func (ct *Controller) Step(final bool) (StepResult, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.stepLocked(final)
}

func (ct *Controller) stepLocked(final bool) (StepResult, error) {
	if !ct.leading {
		return StepResult{}, ErrNotLeader
	}
	if !ct.cfg.Lease.Renew(ct.cfg.ID, ct.term, ct.cfg.LeaseTTL) {
		ct.abdicateLocked("lease renewal refused")
		return StepResult{}, ErrNotLeader
	}
	led := ct.cfg.Ledger
	res := StepResult{Epoch: ct.epoch}

	// Collect phase: deterministic member order, full retry budget per
	// shard, lagging shards re-applied and re-collected.
	merged := make([]int64, ct.cfg.Attr.NumLinks)
	ready := make(map[string]bool, len(ct.members))
	var failedNodes []string
	for _, m := range ct.members {
		resp, err := ct.collectLocked(m)
		if err != nil {
			if errors.Is(err, ErrStaleTerm) {
				ct.abdicateLocked(err.Error())
				return StepResult{}, ErrNotLeader
			}
			failedNodes = append(failedNodes, m)
			continue
		}
		ready[m] = resp.Ready
		for l, n := range resp.Harvest.Pkts {
			if l < len(merged) {
				merged[l] += n
			}
		}
	}

	if len(failedNodes) > 0 {
		// Defer: nothing folds, nothing is lost — unreachable shards
		// keep their counters and the next complete collect includes
		// them. Only when a shard exhausts its failure budget is it
		// evicted, and only then is the partial round discarded.
		ct.deferred++
		ct.mDeferred.Inc()
		res.Deferred = true
		evictedNow := false
		for _, m := range failedNodes {
			ct.failed[m]++
			if ct.failed[m] >= ct.cfg.EvictAfter {
				ct.evictLocked(m, "collect retries exhausted")
				evictedNow = true
			}
		}
		if evictedNow {
			// The evicted shard's uncollected counters are gone: the
			// round cannot be completed, so it is discarded entirely —
			// the epoch advances without folding, survivors reset, and
			// the degraded latch plus reconfiguration freeze make the
			// continued localization a provable coarsening (a
			// refinement prefix) of the fault-free run.
			ct.degraded = true
			ct.frozen = true
			ct.discarded++
			ct.mDiscarded.Inc()
			ct.mDegraded.Set(1)
			led.RecordDegrade(provenance.DegradeEvent{
				Config: ct.eval.Current(), Phase: "shard-round",
				Error: fmt.Sprintf("round discarded: evicted %v", failedNodes),
			})
			ct.epoch++
			ct.mEpoch.Set(float64(ct.epoch))
			ct.broadcastLocked(ct.mkUpdateLocked())
			res.Discarded = true
			res.Epoch = ct.epoch
		}
		return res, nil
	}
	for _, m := range ct.members {
		ct.failed[m] = 0
	}
	ct.updateReadyLocked(ready)

	total := int64(0)
	for _, n := range merged {
		total += n
	}
	if total == 0 || (!final && total < ct.cfg.MinRoundPackets) {
		res.Skipped = true
		return res, nil
	}

	// Fold through the shared evaluator — the same code path, in the
	// same order, with the same inputs a single-node pipeline folds.
	var blocked []bool
	if ct.cfg.Blocked != nil {
		blocked = ct.cfg.Blocked()
	}
	var hints []int
	if ct.cfg.Remeasure != nil {
		hints = ct.cfg.Remeasure()
	}
	noDeploy := final || ct.frozen
	out := ct.eval.Step(merged, noDeploy, blocked, hints, led.Enabled())
	ct.mRounds.Inc()
	res.Folded = true
	res.Outcome = out

	led.RecordRound(provenance.RoundEvent{
		Round:      out.Round,
		Config:     out.Config,
		Packets:    total,
		Volumes:    out.Volumes,
		Clusters:   out.Clusters,
		Candidates: out.Candidates,
	})
	switch {
	case out.Deploy >= 0 && out.Reason == "split":
		led.RecordReconfig(provenance.ReconfigEvent{
			Round: out.Round, Chosen: out.Deploy, Reason: "split",
			Beaten:  reconfigScores(out.Scores),
			Blocked: blockedConfigs(blocked),
		})
	case out.Deploy >= 0 && out.Reason == "remeasure":
		led.RecordReconfig(provenance.ReconfigEvent{
			Round: out.Round, Chosen: out.Deploy, Reason: "remeasure",
			Blocked: blockedConfigs(blocked),
			Hints:   append([]int(nil), hints...),
		})
	}
	if led.Enabled() {
		led.RecordVerdict(provenance.VerdictEvent{
			Origin:     "stream",
			Round:      out.Round,
			Candidates: ct.eval.Candidates(),
			Assign:     ct.eval.Assignments(),
			Clusters:   out.Clusters,
			Converged:  out.Converged,
		})
	}

	// Advance and broadcast: every live shard resets its round counters
	// and deploys the (possibly new) configuration. A shard that misses
	// the apply is re-applied at the next collect.
	ct.epoch++
	ct.mEpoch.Set(float64(ct.epoch))
	ct.broadcastLocked(ct.mkUpdateLocked())
	res.Epoch = ct.epoch

	// Drains execute only at fold boundaries: the drained shard's
	// counters were just folded and reset, so re-hashing its range to
	// the survivors loses nothing.
	for _, m := range append([]string(nil), ct.members...) {
		if ct.notReady[m] >= ct.cfg.DrainAfter {
			ct.drainLocked(m, "readiness gate breached")
		}
	}
	return res, nil
}

// collectLocked runs one shard's collect with the full retry budget.
func (ct *Controller) collectLocked(m string) (CollectResponse, error) {
	rp := ct.cfg.Retry
	var lastErr error
	for attempt := 1; attempt <= rp.Attempts; attempt++ {
		if attempt > 1 {
			ct.cfg.Sleep(rp.Backoff(attempt - 1))
			ct.mRetries.Inc()
		}
		resp, err := ct.cfg.Transport.Collect(m, CollectRequest{Term: ct.term, Epoch: ct.epoch})
		if err != nil {
			if !Retryable(err) {
				return resp, err
			}
			lastErr = err
			continue
		}
		switch {
		case resp.Harvest.Epoch == ct.epoch:
			return resp, nil
		case resp.Harvest.Epoch < ct.epoch:
			// Lagging shard (missed an apply): bring it to the current
			// epoch, then re-collect.
			if _, err := ct.cfg.Transport.Apply(m, ct.mkUpdateLocked()); err != nil {
				if !Retryable(err) {
					return CollectResponse{}, err
				}
				lastErr = err
			}
			continue
		default:
			// A shard ahead of us means a newer controller advanced it:
			// our lease is gone even if we have not noticed yet.
			return CollectResponse{}, fmt.Errorf("%w: shard %s at epoch %d, controller at %d",
				ErrStaleTerm, m, resp.Harvest.Epoch, ct.epoch)
		}
	}
	return CollectResponse{}, fmt.Errorf("shard: collect %s exhausted %d attempts: %w", m, rp.Attempts, lastErr)
}

// helloLocked runs one shard's hello with the retry budget.
func (ct *Controller) helloLocked(m string) (HelloResponse, error) {
	rp := ct.cfg.Retry
	var lastErr error
	for attempt := 1; attempt <= rp.Attempts; attempt++ {
		if attempt > 1 {
			ct.cfg.Sleep(rp.Backoff(attempt - 1))
			ct.mRetries.Inc()
		}
		resp, err := ct.cfg.Transport.Hello(m, HelloRequest{Term: ct.term, Leader: ct.cfg.ID})
		if err == nil {
			return resp, nil
		}
		if !Retryable(err) {
			return resp, err
		}
		lastErr = err
	}
	return HelloResponse{}, fmt.Errorf("shard: hello %s: %w", m, lastErr)
}

// broadcastLocked applies an epoch update to every live member with
// retries; failures are tolerated (the shard is re-applied at its next
// collect, or eventually evicted).
func (ct *Controller) broadcastLocked(u EpochUpdate) {
	rp := ct.cfg.Retry
	for _, m := range ct.members {
		for attempt := 1; attempt <= rp.Attempts; attempt++ {
			if attempt > 1 {
				ct.cfg.Sleep(rp.Backoff(attempt - 1))
				ct.mRetries.Inc()
			}
			if _, err := ct.cfg.Transport.Apply(m, u); err == nil || !Retryable(err) {
				break
			}
		}
	}
}

// mkUpdateLocked snapshots the controller into an EpochUpdate.
func (ct *Controller) mkUpdateLocked() EpochUpdate {
	return EpochUpdate{
		Term:     ct.term,
		Epoch:    ct.epoch,
		Config:   ct.eval.Current(),
		Members:  append([]string(nil), ct.members...),
		Snapshot: ct.eval.Snapshot(),
		Degraded: ct.degraded,
	}
}

// updateReadyLocked advances the consecutive not-ready streaks.
func (ct *Controller) updateReadyLocked(ready map[string]bool) {
	for _, m := range ct.members {
		if ok, seen := ready[m]; seen && !ok {
			ct.notReady[m]++
		} else {
			ct.notReady[m] = 0
		}
	}
}

// drainLocked removes an SLO-breaching but reachable shard: its final
// round was already folded, so re-hashing its AS range onto the
// survivors loses no data.
func (ct *Controller) drainLocked(m string, reason string) {
	ct.removeMemberLocked(m)
	ct.drained = append(ct.drained, m)
	ct.mDrained.Inc()
	ct.cfg.Ledger.RecordMembership(provenance.MembershipEvent{
		Node: m, Action: "drain", Epoch: ct.epoch, Term: ct.term, Reason: reason,
	})
}

// evictLocked removes an unreachable shard.
func (ct *Controller) evictLocked(m string, reason string) {
	ct.removeMemberLocked(m)
	ct.evicted = append(ct.evicted, m)
	ct.mEvicted.Inc()
	ct.cfg.Ledger.RecordMembership(provenance.MembershipEvent{
		Node: m, Action: "evict", Epoch: ct.epoch, Term: ct.term, Reason: reason,
	})
}

func (ct *Controller) removeMemberLocked(m string) {
	kept := ct.members[:0]
	for _, x := range ct.members {
		if x != m {
			kept = append(kept, x)
		}
	}
	ct.members = kept
	ct.ring = ct.ring.Without(m)
	delete(ct.notReady, m)
	delete(ct.failed, m)
	ct.mMembers.Set(float64(len(kept)))
}

// Status snapshots the cluster for the daemon's /cluster endpoint.
func (ct *Controller) Status() ClusterStatus {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	s := ClusterStatus{
		Leader:          ct.cfg.ID,
		Leading:         ct.leading,
		Term:            ct.term,
		Epoch:           ct.epoch,
		Rounds:          ct.eval.Rounds(),
		DeferredRounds:  ct.deferred,
		DiscardedRounds: ct.discarded,
		Degraded:        ct.degraded,
		Converged:       ct.eval.Converged(),
		CurrentConfig:   ct.eval.Current(),
		DeployedConfigs: ct.eval.Deployed(),
		NumClusters:     ct.eval.NumClusters(),
		Candidates:      len(ct.eval.Candidates()),
	}
	for _, m := range ct.members {
		s.Members = append(s.Members, MemberStatus{
			ID: m, State: "live", NotReady: ct.notReady[m], Failed: ct.failed[m],
		})
	}
	for _, m := range ct.drained {
		s.Members = append(s.Members, MemberStatus{ID: m, State: "drained"})
	}
	for _, m := range ct.evicted {
		s.Members = append(s.Members, MemberStatus{ID: m, State: "evicted"})
	}
	sort.Slice(s.Members, func(i, j int) bool { return s.Members[i].ID < s.Members[j].ID })
	return s
}

// Start runs the controller loop on a ticker: acquire (or re-acquire)
// the lease when not leading, otherwise step a round. Stop with Stop.
func (ct *Controller) Start() {
	ct.wg.Add(1)
	go func() {
		defer ct.wg.Done()
		ticker := time.NewTicker(ct.cfg.EvalInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ct.stop:
				return
			case <-ticker.C:
				if !ct.Leading() {
					_ = ct.TryLead()
					continue
				}
				if _, err := ct.Step(false); err != nil && !errors.Is(err, ErrNotLeader) {
					return
				}
			}
		}
	}()
}

// Stop halts the loop and releases the lease if held.
func (ct *Controller) Stop() {
	ct.stopOnce.Do(func() { close(ct.stop) })
	ct.wg.Wait()
	ct.mu.Lock()
	if ct.leading {
		ct.cfg.Lease.Release(ct.cfg.ID, ct.term)
		ct.leading = false
	}
	ct.mu.Unlock()
}

// reconfigScores converts scheduler candidate scores to the ledger's
// representation (mirrors the stream controller).
func reconfigScores(scores []sched.ConfigScore) []provenance.CandidateScore {
	if len(scores) == 0 {
		return nil
	}
	out := make([]provenance.CandidateScore, len(scores))
	for i, s := range scores {
		out[i] = provenance.CandidateScore{Config: s.Config, Score: s.Score}
	}
	return out
}

// blockedConfigs lists the set configurations of a quarantine mask.
func blockedConfigs(blocked []bool) []int {
	var out []int
	for c, b := range blocked {
		if b {
			out = append(out, c)
		}
	}
	return out
}
