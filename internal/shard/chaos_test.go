package shard

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/fault"
	"spooftrack/internal/provenance"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
)

// chaosAttr builds a 16-source / 4-config / 2-link attribution matrix
// where configuration c splits sources by bit c — enough structure for
// the greedy loop to need several reconfigurations.
func chaosAttr() stream.Attribution {
	const nSources, nConfigs = 16, 4
	catchments := make([][]bgp.LinkID, nConfigs)
	for c := 0; c < nConfigs; c++ {
		row := make([]bgp.LinkID, nSources)
		for k := 0; k < nSources; k++ {
			row[k] = bgp.LinkID((k >> c) & 1)
		}
		catchments[c] = row
	}
	asns := make([]topo.ASN, nSources)
	for k := range asns {
		asns[k] = topo.ASN(65000 + k)
	}
	return stream.Attribution{Catchments: catchments, SourceASNs: asns, NumLinks: 2}
}

// chaosAttackers is the fixed traffic mix every campaign sends each
// round: (source position, packets per round).
var chaosAttackers = []struct {
	src  int
	pkts int
}{{5, 30}, {11, 20}, {2, 10}}

func chaosEvent(attr stream.Attribution, src, cfg int) amp.Event {
	return amp.Event{
		Time:        time.Now(),
		IngressLink: uint8(attr.Catchments[cfg][src]),
		TrueSrcAS:   uint32(attr.SourceASNs[src]),
		SpoofedSrc:  netip.MustParseAddr("192.0.2.66"),
		WireLen:     64,
	}
}

const chaosRounds = 10

// runBaseline is the single-node reference: the same traffic and the
// same injector drop schedule folded directly through stream.Evaluator
// — the code a single-node pipeline runs. Skipped (empty) rounds mirror
// the controller's gate.
func runBaseline(prof fault.Profile, seed uint64, rounds int, scored bool) *stream.Evaluator {
	attr := chaosAttr()
	inj := fault.New(prof, seed, attr.NumLinks)
	eval := stream.NewEvaluator(attr, stream.EvalParams{})
	for r := 0; r < rounds; r++ {
		pkts := make([]int64, attr.NumLinks)
		total := int64(0)
		cfg := eval.Current()
		for _, a := range chaosAttackers {
			for i := 0; i < a.pkts; i++ {
				if inj.DropEvent() {
					continue
				}
				pkts[attr.Catchments[cfg][a.src]]++
				total++
			}
		}
		if total == 0 {
			continue
		}
		eval.Step(pkts, r == rounds-1, nil, nil, scored)
	}
	return eval
}

// runCluster drives a sharded campaign: per round, route the traffic
// mix through the live ring, quiesce, optionally run the hook (kills,
// isolation), then step the controller. Returns the cluster for final
// assertions; the caller closes it.
func runCluster(t *testing.T, prof fault.Profile, seed uint64, shards, rounds int,
	cfgHook func(*ClusterConfig), roundHook func(int, *Cluster)) *Cluster {
	t.Helper()
	attr := chaosAttr()
	cc := ClusterConfig{
		Shards:          shards,
		Attr:            attr,
		Eval:            stream.EvalParams{},
		MinRoundPackets: 1,
		Pipe: stream.Config{
			Workers:       2,
			BatchSize:     1,
			FlushInterval: time.Millisecond,
		},
		Injector: fault.New(prof, seed, attr.NumLinks),
		// A generous budget: transient partitions at netsplit's rate
		// exhaust 20 attempts with probability ~0.35^20.
		Retry: RetryPolicy{Attempts: 20, Base: time.Microsecond, Max: time.Microsecond},
	}
	if cfgHook != nil {
		cfgHook(&cc)
	}
	cl, err := NewCluster(cc)
	if err != nil {
		t.Fatalf("NewCluster(%d shards): %v", shards, err)
	}
	for r := 0; r < rounds; r++ {
		cfg := cl.Controller().Status().CurrentConfig
		for _, a := range chaosAttackers {
			for i := 0; i < a.pkts; i++ {
				cl.Ingest(chaosEvent(attr, a.src, cfg))
			}
		}
		if err := cl.Quiesce(10 * time.Second); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if roundHook != nil {
			roundHook(r, cl)
		}
		if _, err := cl.Step(r == rounds-1); err != nil {
			t.Fatalf("round %d: Step: %v", r, err)
		}
	}
	return cl
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertByteIdentical checks the full localization state — deployment
// sequence (hence catchment tables), candidate set, cluster
// assignments, convergence — matches the reference evaluator.
func assertByteIdentical(t *testing.T, label string, want *stream.Evaluator, got *Controller) {
	t.Helper()
	ge := got.Evaluator()
	if !eqInts(want.Deployed(), ge.Deployed()) {
		t.Errorf("%s: deployed configs %v, want %v", label, ge.Deployed(), want.Deployed())
	}
	if !eqInts(want.Candidates(), ge.Candidates()) {
		t.Errorf("%s: candidates %v, want %v", label, ge.Candidates(), want.Candidates())
	}
	wa, ga := want.Assignments(), ge.Assignments()
	if len(wa) != len(ga) {
		t.Fatalf("%s: assignment lengths %d vs %d", label, len(ga), len(wa))
	}
	for i := range wa {
		if wa[i] != ga[i] {
			t.Errorf("%s: source %d assigned cluster %d, want %d", label, i, ga[i], wa[i])
		}
	}
	if want.Converged() != ge.Converged() {
		t.Errorf("%s: converged %v, want %v", label, ge.Converged(), want.Converged())
	}
	if want.Rounds() != ge.Rounds() {
		t.Errorf("%s: folded %d rounds, want %d", label, ge.Rounds(), want.Rounds())
	}
}

// TestChaosByteIdentical is the core robustness matrix: under every
// fault profile (including the partition/split-brain netsplit profile),
// at shard counts 1, 4, and 8, the sharded cluster's localization must
// be byte-identical to the single-node fold — transient faults are
// healed by retries and re-elections, never absorbed as data loss.
func TestChaosByteIdentical(t *testing.T) {
	profiles := append([]fault.Profile{{Name: "clean"}}, fault.Profiles()...)
	const seed = 0xC0FFEE
	for _, prof := range profiles {
		want := runBaseline(prof, seed, chaosRounds, false)
		for _, shards := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/%d-shards", prof.Name, shards), func(t *testing.T) {
				cl := runCluster(t, prof, seed, shards, chaosRounds, nil, nil)
				defer cl.Close()
				assertByteIdentical(t, prof.Name, want, cl.Controller())
				if cl.Controller().Degraded() {
					t.Error("transient faults must not latch the degraded flag")
				}
			})
		}
	}
}

// TestControllerFailoverMidCampaign kills the active controller halfway
// through: the standby must win the expired lease at a higher term,
// recover the evaluator from the shards' snapshots, and finish the
// campaign byte-identically — with the whole story (elect, recover) in
// the ledger, and the ledger still replayable.
func TestControllerFailoverMidCampaign(t *testing.T) {
	const seed = 7
	led := provenance.New(provenance.Options{})
	want := runBaseline(fault.Profile{Name: "clean"}, seed, chaosRounds, true)
	var killed string
	cl := runCluster(t, fault.Profile{Name: "clean"}, seed, 4, chaosRounds,
		func(cc *ClusterConfig) { cc.Ledger = led },
		func(r int, c *Cluster) {
			if r == chaosRounds/2 {
				killed = c.KillController()
			}
		})
	defer cl.Close()
	if killed == "" {
		t.Fatal("no controller was killed")
	}
	ct := cl.Controller()
	if got := ct.Status().Leader; got == killed {
		t.Fatalf("leader is still %s after its kill", got)
	}
	if ct.Term() < 2 {
		t.Fatalf("failover did not raise the term: %d", ct.Term())
	}
	assertByteIdentical(t, "failover", want, ct)

	var elects, recovers int
	for _, ev := range led.Export().Events {
		if ev.Failover == nil {
			continue
		}
		switch ev.Failover.Action {
		case "elect":
			elects++
		case "recover":
			recovers++
		}
	}
	if elects < 2 || recovers < 1 {
		t.Errorf("ledger failover events: %d elects, %d recovers; want >=2 and >=1", elects, recovers)
	}
	rr, err := provenance.Replay(led.Export())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rr.Reproduced {
		t.Fatalf("ledger did not replay byte-for-byte: %v", rr.Mismatches)
	}
	if rr.Rounds != want.Rounds() {
		t.Errorf("replay folded %d rounds, want %d", rr.Rounds, want.Rounds())
	}
}

// assertCoarsening checks the degraded run's partition is a coarsening
// of the fault-free one: sources the baseline keeps together are still
// together — localization lost precision, never correctness.
func assertCoarsening(t *testing.T, base, degraded []int32) {
	t.Helper()
	if len(base) != len(degraded) {
		t.Fatalf("assignment lengths %d vs %d", len(degraded), len(base))
	}
	for i := range base {
		for j := i + 1; j < len(base); j++ {
			if base[i] == base[j] && degraded[i] != degraded[j] {
				t.Fatalf("sources %d and %d share a cluster fault-free but were split degraded — not a coarsening", i, j)
			}
		}
	}
}

// runDegraded drives a campaign with a permanent failure injected by
// fail(), then asserts the graceful-coarsening contract: explicit
// eviction and degraded latch, frozen reconfiguration (the deployment
// sequence is a prefix of the fault-free run), a coarser — never wrong
// — partition, and the loss written to the ledger.
func runDegraded(t *testing.T, fail func(*Cluster), wantState string) {
	const seed = 21
	led := provenance.New(provenance.Options{})
	want := runBaseline(fault.Profile{Name: "clean"}, seed, chaosRounds, true)
	var discarded, deferred bool
	deploysAtDiscard := -1
	attr := chaosAttr()
	cl, err := NewCluster(ClusterConfig{
		Shards:          4,
		Attr:            attr,
		Eval:            stream.EvalParams{},
		MinRoundPackets: 1,
		Pipe:            stream.Config{Workers: 2, BatchSize: 1, FlushInterval: time.Millisecond},
		Injector:        fault.New(fault.Profile{Name: "clean"}, seed, attr.NumLinks),
		Retry:           RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond},
		EvictAfter:      2,
		Ledger:          led,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for r := 0; r < chaosRounds; r++ {
		cfg := cl.Controller().Status().CurrentConfig
		for _, a := range chaosAttackers {
			for i := 0; i < a.pkts; i++ {
				cl.Ingest(chaosEvent(attr, a.src, cfg))
			}
		}
		if err := cl.Quiesce(10 * time.Second); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Fail early, while the greedy loop still has configurations to
		// deploy — the freeze must visibly cut the deployment sequence
		// short.
		if r == 2 {
			fail(cl)
		}
		res, err := cl.Step(r == chaosRounds-1)
		if err != nil {
			t.Fatalf("round %d: Step: %v", r, err)
		}
		deferred = deferred || res.Deferred
		if res.Discarded && !discarded {
			discarded = true
			deploysAtDiscard = len(cl.Controller().Evaluator().Deployed())
		}
	}
	ct := cl.Controller()
	if !deferred || !discarded {
		t.Fatalf("permanent loss must surface as deferred-then-discarded rounds (deferred=%v discarded=%v)", deferred, discarded)
	}
	if !ct.Degraded() {
		t.Fatal("permanent shard loss must latch the degraded flag")
	}
	st := ct.Status()
	lost := ""
	for _, m := range st.Members {
		if m.State == wantState {
			lost = m.ID
		}
	}
	if lost == "" {
		t.Fatalf("no member in state %q: %+v", wantState, st.Members)
	}
	// Frozen reconfiguration: nothing deploys after the discard, and
	// what did deploy is a prefix of the fault-free sequence — the
	// refinement-prefix property behind provable coarsening.
	wd, gd := want.Deployed(), ct.Evaluator().Deployed()
	if len(gd) != deploysAtDiscard {
		t.Errorf("deployments grew after the discard: %d then, %d now", deploysAtDiscard, len(gd))
	}
	if len(gd) > len(wd) || !eqInts(wd[:len(gd)], gd) {
		t.Errorf("degraded deployments %v are not a prefix of fault-free %v", gd, wd)
	}
	if len(gd) >= len(wd) {
		t.Errorf("the freeze should have cut deployments short: degraded %v vs fault-free %v", gd, wd)
	}
	assertCoarsening(t, want.Assignments(), ct.Evaluator().Assignments())
	var evicts, degrades int
	for _, ev := range led.Export().Events {
		if ev.Membership != nil && ev.Membership.Action == "evict" && ev.Membership.Node == lost {
			evicts++
		}
		if ev.Degrade != nil {
			degrades++
		}
	}
	if evicts == 0 || degrades == 0 {
		t.Errorf("ledger must record the loss: %d evict events, %d degrade events", evicts, degrades)
	}
}

// TestPermanentShardCrashCoarsens: a shard dies for good mid-campaign.
func TestPermanentShardCrashCoarsens(t *testing.T) {
	runDegraded(t, func(c *Cluster) { c.KillShard("shard-2") }, "evicted")
}

// TestPermanentNetsplitCoarsens: a shard is partitioned away for good —
// the same eviction path via the transport instead of the node.
func TestPermanentNetsplitCoarsens(t *testing.T) {
	runDegraded(t, func(c *Cluster) { c.Isolate("shard-1", true) }, "evicted")
}

// TestDrainByteIdentical: a shard that breaches its readiness gate is
// drained — it is still reachable, its last round is still collected,
// so the campaign stays byte-identical to the fault-free single-node
// run while the membership shrinks.
func TestDrainByteIdentical(t *testing.T) {
	const seed = 33
	want := runBaseline(fault.Profile{Name: "clean"}, seed, chaosRounds, false)
	var sick atomic.Bool
	cl := runCluster(t, fault.Profile{Name: "clean"}, seed, 4, chaosRounds,
		func(cc *ClusterConfig) {
			cc.DrainAfter = 2
			cc.Ready = func(id string) func() bool {
				if id != "shard-3" {
					return nil
				}
				return func() bool { return !sick.Load() }
			}
		},
		func(r int, c *Cluster) {
			if r == 3 {
				sick.Store(true)
			}
		})
	defer cl.Close()
	ct := cl.Controller()
	st := ct.Status()
	found := false
	for _, m := range st.Members {
		if m.ID == "shard-3" && m.State == "drained" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shard-3 was not drained: %+v", st.Members)
	}
	if ct.Degraded() {
		t.Error("draining loses nothing and must not latch the degraded flag")
	}
	assertByteIdentical(t, "drain", want, ct)
}
