package shard

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"spooftrack/internal/fault"
	"spooftrack/internal/stream"
)

// TestRingDistribution: every member owns a share of the keyspace, the
// mapping is deterministic, and removing a member only moves the keys
// it owned.
func TestRingDistribution(t *testing.T) {
	ids := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	r := NewRing(ids, 0)
	owned := make(map[string]int)
	before := make(map[uint32]string)
	for as := uint32(64000); as < 66000; as++ {
		o := r.Owner(as)
		owned[o]++
		before[as] = o
	}
	for _, id := range ids {
		if owned[id] == 0 {
			t.Errorf("%s owns no keys: %v", id, owned)
		}
	}
	r2 := NewRing(ids, 0)
	for as, o := range before {
		if r2.Owner(as) != o {
			t.Fatalf("ring is not deterministic at AS %d", as)
		}
	}
	without := r.Without("shard-2")
	if without.Size() != 3 {
		t.Fatalf("Without left %d members", without.Size())
	}
	for as, o := range before {
		no := without.Owner(as)
		if o != "shard-2" && no != o {
			t.Errorf("AS %d moved from %s to %s though its owner survived", as, o, no)
		}
		if o == "shard-2" && no == "shard-2" {
			t.Errorf("AS %d still owned by the removed shard", as)
		}
	}
}

// TestMemLease: acquire, refused second acquire, renew, expiry, and the
// monotonic term across handovers.
func TestMemLease(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewMemLease()
	l.SetClock(func() time.Time { return now })
	lease, ok := l.Acquire("a", time.Second)
	if !ok || lease.Holder != "a" || lease.Term != 1 {
		t.Fatalf("first acquire: %+v ok=%v", lease, ok)
	}
	if _, ok := l.Acquire("b", time.Second); ok {
		t.Fatal("b acquired a live lease")
	}
	if !l.Renew("a", 1, time.Second) {
		t.Fatal("holder could not renew")
	}
	if l.Renew("a", 2, time.Second) {
		t.Fatal("renew accepted a wrong term")
	}
	now = now.Add(2 * time.Second)
	lease, ok = l.Acquire("b", time.Second)
	if !ok || lease.Holder != "b" || lease.Term != 2 {
		t.Fatalf("expired lease not taken over: %+v ok=%v", lease, ok)
	}
	l.Release("b", 2)
	lease, ok = l.Acquire("a", time.Second)
	if !ok || lease.Term != 3 {
		t.Fatalf("released lease not reacquired at a higher term: %+v ok=%v", lease, ok)
	}
}

// TestMemLeaseSplitBrain: with the split-brain fault at certainty, a
// renewal fails and expires the lease, so the next acquire wins at a
// higher term — the injected flap becomes a fenced re-election.
func TestMemLeaseSplitBrain(t *testing.T) {
	l := NewMemLease()
	l.SetInjector(fault.New(fault.Profile{PrSplitBrain: 1}, 1, 2))
	lease, ok := l.Acquire("a", time.Hour)
	if !ok {
		t.Fatal("acquire failed")
	}
	if l.Renew("a", lease.Term, time.Hour) {
		t.Fatal("renewal survived a certain split-brain fault")
	}
	next, ok := l.Acquire("b", time.Hour)
	if !ok || next.Term != lease.Term+1 {
		t.Fatalf("post-split-brain acquire: %+v ok=%v", next, ok)
	}
}

// TestFileLease: the on-disk lease store round-trips and excludes a
// second holder until expiry.
func TestFileLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease", "ctrl.lease")
	f := NewFileLease(path)
	if err := f.Dir(); err != nil {
		t.Fatal(err)
	}
	lease, ok := f.Acquire("a", time.Hour)
	if !ok || lease.Holder != "a" || lease.Term != 1 {
		t.Fatalf("acquire: %+v ok=%v", lease, ok)
	}
	if _, ok := f.Acquire("b", time.Hour); ok {
		t.Fatal("b acquired a live file lease")
	}
	if !f.Renew("a", 1, time.Hour) {
		t.Fatal("holder could not renew the file lease")
	}
	f.Release("a", 1)
	lease, ok = f.Acquire("b", time.Hour)
	if !ok || lease.Holder != "b" || lease.Term != 2 {
		t.Fatalf("takeover after release: %+v ok=%v", lease, ok)
	}
}

// TestRetryPolicyBackoff: exponential doubling from Base, capped at Max.
func TestRetryPolicyBackoff(t *testing.T) {
	rp := RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 10 * time.Millisecond}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond,
	}
	for i, w := range want {
		if got := rp.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if Retryable(ErrStaleTerm) {
		t.Error("stale term must not be retryable")
	}
	if !Retryable(ErrPartitioned) || !Retryable(ErrUnavailable) {
		t.Error("partition and unavailability must be retryable")
	}
}

// TestNodeTermFencing: a node that has seen term T rejects every RPC at
// a lower term — the deposed-controller fence.
func TestNodeTermFencing(t *testing.T) {
	n, err := NewNode(NodeConfig{ID: "s0", Attr: chaosAttr(), Pipe: stream.Config{Workers: 1, BatchSize: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.HandleCollect(CollectRequest{Term: 3}); err != nil {
		t.Fatalf("collect at term 3: %v", err)
	}
	if _, err := n.HandleCollect(CollectRequest{Term: 2}); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("collect at stale term 2: err=%v, want ErrStaleTerm", err)
	}
	if _, err := n.HandleApply(EpochUpdate{Term: 1, Epoch: 1}); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("apply at stale term 1: err=%v, want ErrStaleTerm", err)
	}
	if _, err := n.HandleHello(HelloRequest{Term: 0}); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("hello at stale term 0: err=%v, want ErrStaleTerm", err)
	}
	n.Crash()
	if _, err := n.HandleCollect(CollectRequest{Term: 9}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("collect on crashed node: err=%v, want ErrUnavailable", err)
	}
}

// TestLocalTransportIsolation: an isolated node fails with
// ErrPartitioned until the isolation lifts.
func TestLocalTransportIsolation(t *testing.T) {
	tr := NewLocalTransport(nil)
	n, err := NewNode(NodeConfig{ID: "s0", Attr: chaosAttr(), Pipe: stream.Config{Workers: 1, BatchSize: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	tr.Register(n)
	if _, err := tr.Hello("s0", HelloRequest{Term: 1, Leader: "c"}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, err := tr.Hello("missing", HelloRequest{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("unregistered node: err=%v, want ErrUnavailable", err)
	}
	tr.Isolate("s0", true)
	if _, err := tr.Collect("s0", CollectRequest{Term: 1}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("isolated collect: err=%v, want ErrPartitioned", err)
	}
	tr.Isolate("s0", false)
	if _, err := tr.Collect("s0", CollectRequest{Term: 1}); err != nil {
		t.Fatalf("collect after isolation lifted: %v", err)
	}
}

// TestHTTPTransportRoundTrip: a controller over the HTTP transport
// against httptest shard servers folds a round end-to-end, and term
// fencing surfaces as ErrStaleTerm through the 409 mapping.
func TestHTTPTransportRoundTrip(t *testing.T) {
	attr := chaosAttr()
	tr := NewHTTPTransport(2 * time.Second)
	nodes := make(map[string]*Node)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("shard-%d", i)
		n, err := NewNode(NodeConfig{ID: id, Attr: attr, Pipe: stream.Config{Workers: 1, BatchSize: 1, FlushInterval: time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		srv := httptest.NewServer(NodeHandler(n))
		defer srv.Close()
		tr.Register(id, srv.URL)
		nodes[id] = n
	}
	ct, err := NewController(ControllerConfig{
		ID:              "ctrl-0",
		Attr:            attr,
		Eval:            stream.EvalParams{},
		MinRoundPackets: 1,
		Members:         []string{"shard-0", "shard-1"},
		Transport:       tr,
		Lease:           NewMemLease(),
		Retry:           RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond},
		Sleep:           func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.TryLead(); err != nil {
		t.Fatal(err)
	}
	cfg := ct.Status().CurrentConfig
	ring := ct.Ring()
	for _, a := range chaosAttackers {
		for i := 0; i < a.pkts; i++ {
			ev := chaosEvent(attr, a.src, cfg)
			nodes[ring.Owner(ev.TrueSrcAS)].Ingest(ev)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := int64(0)
		for _, n := range nodes {
			total += n.Pipeline().TotalEvents()
		}
		if total == 60 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events not flushed: %d/60", total)
		}
		time.Sleep(time.Millisecond)
	}
	res, err := ct.Step(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Folded || res.Epoch != 1 {
		t.Fatalf("step over HTTP: %+v", res)
	}
	// A deposed controller's term is rejected through the 409 mapping.
	if _, err := tr.Collect("shard-0", CollectRequest{Term: 0, Epoch: 1}); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale term over HTTP: err=%v, want ErrStaleTerm", err)
	}
}
