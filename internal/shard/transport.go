package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spooftrack/internal/fault"
)

// Transport carries the controller's three RPCs to a shard node by id.
// Implementations: LocalTransport (in-process, with injected partition
// faults — the chaos harness), HTTPTransport (multi-process, JSON over
// HTTP — cmd/spooftrackd and examples/sharded-ingest).
type Transport interface {
	Collect(node string, req CollectRequest) (CollectResponse, error)
	Apply(node string, u EpochUpdate) (ApplyResponse, error)
	Hello(node string, req HelloRequest) (HelloResponse, error)
}

// RetryPolicy is the deterministic retry/backoff schedule applied to
// every controller RPC: Attempts tries, exponential backoff from Base
// doubling up to Max. The schedule is a pure function of the attempt
// number — no randomized jitter — so a chaos run's RPC timeline is
// reproducible; the fault injector's per-attempt rolls provide the
// decorrelation jitter would.
type RetryPolicy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

func (rp *RetryPolicy) setDefaults() {
	if rp.Attempts <= 0 {
		rp.Attempts = 8
	}
	if rp.Base <= 0 {
		rp.Base = time.Millisecond
	}
	if rp.Max <= 0 {
		rp.Max = 100 * time.Millisecond
	}
}

// Backoff returns the sleep before the given retry (attempt 1 is the
// first retry).
func (rp RetryPolicy) Backoff(attempt int) time.Duration {
	d := rp.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= rp.Max {
			return rp.Max
		}
	}
	if d > rp.Max {
		return rp.Max
	}
	return d
}

// Retryable reports whether an RPC error is worth another attempt: term
// fencing is permanent, everything else (partitions, crashes, transport
// failures) re-rolls.
func Retryable(err error) bool {
	return err != nil && !errors.Is(err, ErrStaleTerm)
}

// LocalTransport is the in-process transport: nodes registered by id,
// RPCs delivered as method calls, with the fault injector deciding
// per-edge per-attempt partitions and an explicit isolation switch for
// permanent netsplits. It is the chaos harness's network.
type LocalTransport struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	inj      *fault.Injector
	isolated map[string]bool
	attempts map[string]int
}

// NewLocalTransport builds an in-process transport. inj may be nil (no
// injected partitions).
func NewLocalTransport(inj *fault.Injector) *LocalTransport {
	return &LocalTransport{
		nodes:    make(map[string]*Node),
		inj:      inj,
		isolated: make(map[string]bool),
		attempts: make(map[string]int),
	}
}

// Register adds a node to the transport.
func (t *LocalTransport) Register(n *Node) {
	t.mu.Lock()
	t.nodes[n.ID()] = n
	t.mu.Unlock()
}

// Isolate switches a permanent partition for the node on or off — the
// injected-probability partitions heal on retry; this one does not
// until switched back.
func (t *LocalTransport) Isolate(node string, on bool) {
	t.mu.Lock()
	t.isolated[node] = on
	t.mu.Unlock()
}

// edge resolves the node and rolls this attempt's partition fault.
func (t *LocalTransport) edge(node string) (*Node, error) {
	t.mu.Lock()
	n := t.nodes[node]
	iso := t.isolated[node]
	t.attempts[node]++
	attempt := t.attempts[node]
	inj := t.inj
	t.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("%w: %s not registered", ErrUnavailable, node)
	}
	if iso {
		return nil, fmt.Errorf("%w: %s isolated", ErrPartitioned, node)
	}
	if inj != nil && inj.Partitioned("controller", node, attempt) {
		return nil, fmt.Errorf("%w: controller->%s attempt %d", ErrPartitioned, node, attempt)
	}
	return n, nil
}

// Collect implements Transport.
func (t *LocalTransport) Collect(node string, req CollectRequest) (CollectResponse, error) {
	n, err := t.edge(node)
	if err != nil {
		return CollectResponse{}, err
	}
	return n.HandleCollect(req)
}

// Apply implements Transport.
func (t *LocalTransport) Apply(node string, u EpochUpdate) (ApplyResponse, error) {
	n, err := t.edge(node)
	if err != nil {
		return ApplyResponse{}, err
	}
	return n.HandleApply(u)
}

// Hello implements Transport.
func (t *LocalTransport) Hello(node string, req HelloRequest) (HelloResponse, error) {
	n, err := t.edge(node)
	if err != nil {
		return HelloResponse{}, err
	}
	return n.HandleHello(req)
}
