package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spooftrack/internal/fault"
)

// Lease is one leadership grant: who holds it, at which monotonic term,
// and until when. Terms only ever increase — every new acquisition
// bumps the term, and shards fence RPCs on it — so two controllers can
// never both act at the same term.
type Lease struct {
	Holder  string    `json:"holder"`
	Term    uint64    `json:"term"`
	Expires time.Time `json:"expires"`
}

// LeaseStore is the controller-election substrate: a single lease with
// compare-and-swap semantics. Implementations must guarantee term
// monotonicity; they do not need to guarantee liveness (an expired
// lease simply lets the next Acquire win).
type LeaseStore interface {
	// Acquire takes the lease if it is free, expired, or already held by
	// this holder, returning the granted lease (with a freshly bumped
	// term) and true. Otherwise it returns the current lease and false.
	Acquire(holder string, ttl time.Duration) (Lease, bool)
	// Renew extends the lease iff holder still owns it at term.
	Renew(holder string, term uint64, ttl time.Duration) bool
	// Release gives the lease up iff holder owns it at term (clean
	// shutdown hands leadership over without waiting for expiry).
	Release(holder string, term uint64)
	// Current returns the lease as last observed.
	Current() Lease
}

// MemLease is the in-process lease store used by in-process clusters
// and the chaos harness: an injectable clock makes expiry deterministic
// in tests, and an optional fault injector models split-brain — the
// moment a renewal spuriously fails even though the controller believes
// it is leading, forcing a fenced re-election.
type MemLease struct {
	mu  sync.Mutex
	cur Lease
	now func() time.Time
	inj *fault.Injector
}

// NewMemLease builds an in-memory lease store on the wall clock.
func NewMemLease() *MemLease {
	return &MemLease{now: time.Now}
}

// SetClock replaces the clock (tests).
func (m *MemLease) SetClock(now func() time.Time) {
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// SetInjector arms the split-brain fault: renewals roll
// fault.Injector.SplitBrain and a hit invalidates the lease.
func (m *MemLease) SetInjector(inj *fault.Injector) {
	m.mu.Lock()
	m.inj = inj
	m.mu.Unlock()
}

// Acquire implements LeaseStore.
func (m *MemLease) Acquire(holder string, ttl time.Duration) (Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if m.cur.Holder == "" || !now.Before(m.cur.Expires) || m.cur.Holder == holder {
		m.cur = Lease{Holder: holder, Term: m.cur.Term + 1, Expires: now.Add(ttl)}
		return m.cur, true
	}
	return m.cur, false
}

// Renew implements LeaseStore. Split-brain injection lands here: the
// injected failure expires the lease, so the holder abdicates and the
// next acquisition (by anyone) is fenced at a higher term.
func (m *MemLease) Renew(holder string, term uint64, ttl time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur.Holder != holder || m.cur.Term != term {
		return false
	}
	if m.inj != nil && m.inj.SplitBrain(holder, term) {
		m.cur.Expires = m.now()
		return false
	}
	m.cur.Expires = m.now().Add(ttl)
	return true
}

// Release implements LeaseStore.
func (m *MemLease) Release(holder string, term uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur.Holder == holder && m.cur.Term == term {
		m.cur.Expires = m.now()
	}
}

// Current implements LeaseStore.
func (m *MemLease) Current() Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// FileLease is a lease file shared by cooperating processes on one host
// — the multi-process demo's election substrate. Writes go through a
// temp file + atomic rename and are verified by re-reading, which is
// enough mutual exclusion for processes that poll at lease-TTL
// granularity (it is not a distributed lock manager and does not
// pretend to be one).
type FileLease struct {
	path string
	now  func() time.Time
}

// NewFileLease builds a lease store over the given file path.
func NewFileLease(path string) *FileLease {
	return &FileLease{path: path, now: time.Now}
}

func (f *FileLease) read() Lease {
	var l Lease
	b, err := os.ReadFile(f.path)
	if err != nil {
		return Lease{}
	}
	if json.Unmarshal(b, &l) != nil {
		return Lease{}
	}
	return l
}

func (f *FileLease) write(l Lease) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.%d.tmp", f.path, os.Getpid())
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Acquire implements LeaseStore.
func (f *FileLease) Acquire(holder string, ttl time.Duration) (Lease, bool) {
	cur := f.read()
	now := f.now()
	if cur.Holder != "" && now.Before(cur.Expires) && cur.Holder != holder {
		return cur, false
	}
	want := Lease{Holder: holder, Term: cur.Term + 1, Expires: now.Add(ttl)}
	if err := f.write(want); err != nil {
		return cur, false
	}
	// Verify: another process may have renamed over ours between write
	// and now; whoever's rename landed last owns the lease.
	got := f.read()
	return got, got.Holder == holder && got.Term == want.Term
}

// Renew implements LeaseStore.
func (f *FileLease) Renew(holder string, term uint64, ttl time.Duration) bool {
	cur := f.read()
	if cur.Holder != holder || cur.Term != term {
		return false
	}
	cur.Expires = f.now().Add(ttl)
	if f.write(cur) != nil {
		return false
	}
	got := f.read()
	return got.Holder == holder && got.Term == term
}

// Release implements LeaseStore.
func (f *FileLease) Release(holder string, term uint64) {
	cur := f.read()
	if cur.Holder == holder && cur.Term == term {
		cur.Expires = f.now()
		_ = f.write(cur)
	}
}

// Current implements LeaseStore.
func (f *FileLease) Current() Lease { return f.read() }

// Dir ensures the lease file's directory exists (demo convenience).
func (f *FileLease) Dir() error {
	return os.MkdirAll(filepath.Dir(f.path), 0o755)
}
