package sched

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/topo"
)

// targetedWorld builds a world where a known set of sources shares a
// common upstream, so TargetedPoisonPlan has a natural target.
func targetedWorld(t *testing.T) (*topo.Graph, *bgp.Engine, *bgp.Outcome, []int) {
	t.Helper()
	p := topo.DefaultGenParams(52)
	p.NumASes = 600
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var provs []int
	for _, i := range g.TransitASes() {
		if !g.IsTier1(i) {
			provs = append(provs, i)
		}
		if len(provs) == 3 {
			break
		}
	}
	origin := bgp.Origin{ASN: 47065, Links: []bgp.Link{
		{Name: "a", Provider: provs[0]},
		{Name: "b", Provider: provs[1]},
		{Name: "c", Provider: provs[2]},
	}}
	e, err := bgp.NewEngine(g, origin, bgp.Params{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Propagate(bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}, {Link: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int, g.NumASes())
	for i := range sources {
		sources[i] = i
	}
	return g, e, &out, sources
}

func TestTargetedPoisonPlanShape(t *testing.T) {
	g, _, out, sources := targetedWorld(t)
	// One big cluster: everything. The plan must target the transit AS
	// most shared by members' paths.
	part := cluster.New(len(sources))
	plan := TargetedPoisonPlan(out, part, sources, 10, 3)
	if len(plan) != 1 {
		t.Fatalf("got %d configs for one cluster, want 1", len(plan))
	}
	cfg := plan[0].Config
	if len(cfg.Anns) != 3 {
		t.Fatal("targeted config must announce from all links")
	}
	poisons := 0
	for _, a := range cfg.Anns {
		for _, p := range a.Poison {
			poisons++
			if _, ok := g.Index(p); !ok {
				t.Fatalf("poison target AS%d not in graph", p)
			}
		}
	}
	if poisons != 1 {
		t.Fatalf("%d poisons, want 1", poisons)
	}
	if plan[0].Phase != PhasePoisoning {
		t.Fatal("wrong phase")
	}
}

func TestTargetedPoisonPlanSkipsSmallClusters(t *testing.T) {
	_, _, out, sources := targetedWorld(t)
	part := cluster.New(len(sources))
	// Threshold above the universe size: nothing to target.
	plan := TargetedPoisonPlan(out, part, sources, len(sources)+1, 3)
	if len(plan) != 0 {
		t.Fatalf("got %d configs, want 0", len(plan))
	}
}

func TestTargetedPoisonPlanDeduplicates(t *testing.T) {
	_, _, out, sources := targetedWorld(t)
	// Two clusters that will resolve to the same (link, target) must
	// produce a single configuration. Split the universe in half
	// arbitrarily; both halves share upstream structure.
	part := cluster.New(len(sources))
	labels := make([]bgp.LinkID, len(sources))
	for i := range labels {
		labels[i] = bgp.LinkID(i % 2)
	}
	part.Refine(labels)
	plan := TargetedPoisonPlan(out, part, sources, 10, 3)
	seen := map[string]bool{}
	for _, pc := range plan {
		key := pc.Config.String()
		if seen[key] {
			t.Fatal("duplicate targeted configuration")
		}
		seen[key] = true
	}
}
