package sched

import (
	"sort"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/topo"
)

// Predictor estimates catchments without deploying announcements, using
// a textbook Gao-Rexford model of the topology (no policy noise, no
// loop-prevention quirks). §V-C observes that most ASes follow the
// best-relationship + shortest-path model (Fig. 9), so such a predictor
// can pre-rank configurations and reduce measurement load.
type Predictor struct {
	engine *bgp.Engine
	cache  *bgp.OutcomeCache
}

// NewPredictor builds a predictor for the origin over the graph.
func NewPredictor(g *topo.Graph, origin bgp.Origin) (*Predictor, error) {
	// A fixed seed keeps tiebreaks deterministic; with zero noise the
	// seed only affects equal-length tie-breaking.
	eng, err := bgp.NewEngine(g, origin, bgp.Params{Seed: 1})
	if err != nil {
		return nil, err
	}
	return &Predictor{engine: eng, cache: bgp.NewOutcomeCache()}, nil
}

// Predict returns the predicted catchment vector for a configuration.
// Predictions are memoized: ranking loops re-evaluate the same
// candidates across rounds, and the model is deterministic.
func (p *Predictor) Predict(cfg bgp.Config) ([]bgp.LinkID, error) {
	out, err := p.cache.Propagate(p.engine, cfg)
	if err != nil {
		return nil, err
	}
	return out.CatchmentVector(), nil
}

// RankByPredictedGain orders the candidate configurations by how many
// clusters the predictor expects each to produce when refining the
// current partition restricted to the given sources (descending gain).
// Configurations predicted to provide no additional information sort
// last, matching §V-C's proposal to postpone them.
func (p *Predictor) RankByPredictedGain(part *cluster.Partition, sources []int, cands []bgp.Config) ([]int, error) {
	type scored struct {
		idx  int
		gain int
	}
	scoredList := make([]scored, len(cands))
	for i, cfg := range cands {
		vec, err := p.Predict(cfg)
		if err != nil {
			return nil, err
		}
		labels := make([]bgp.LinkID, len(sources))
		for k, src := range sources {
			labels[k] = vec[src]
		}
		scoredList[i] = scored{idx: i, gain: part.NumClustersAfter(labels)}
	}
	sort.SliceStable(scoredList, func(a, b int) bool { return scoredList[a].gain > scoredList[b].gain })
	order := make([]int, len(cands))
	for i, s := range scoredList {
		order[i] = s.idx
	}
	return order, nil
}

// TargetedPoisonPlan implements the paper's future-work idea of
// poisoning distant ASes to split large clusters (§V-B): for every
// cluster of at least minClusterSize sources, find the transit AS most
// shared by the members' data paths (excluding the members themselves
// and the direct providers) and generate a configuration announcing from
// all links while poisoning it on the members' current ingress link.
func TargetedPoisonPlan(out *bgp.Outcome, part *cluster.Partition, sources []int, minClusterSize, numLinks int) []PlannedConfig {
	g := out.Graph()
	memberSets := part.Members()
	var plan []PlannedConfig
	seen := make(map[string]bool)
	for _, members := range memberSets {
		if len(members) < minClusterSize {
			continue
		}
		// Count upstream transit ASes across member paths. A shared
		// upstream splits the cluster when only part of the members
		// route through it, so any intermediate hop is a candidate —
		// including ones that are themselves members.
		counts := make(map[int]int)
		linkVotes := make(map[bgp.LinkID]int)
		for _, k := range members {
			src := sources[k]
			dp := out.DataPath(src)
			if dp == nil {
				continue
			}
			linkVotes[out.CatchmentOf(src)]++
			// Skip the source itself and the final provider hop.
			for h := 1; h < len(dp)-1; h++ {
				counts[dp[h]]++
			}
		}
		target, best := -1, 0
		for as, c := range counts {
			if c > best || (c == best && (target == -1 || as < target)) {
				target, best = as, c
			}
		}
		link, bestVotes := bgp.NoLink, 0
		for l, v := range linkVotes {
			if v > bestVotes || (v == bestVotes && l < link) {
				link, bestVotes = l, v
			}
		}
		if target == -1 || link == bgp.NoLink {
			continue
		}
		all := make([]bgp.LinkID, numLinks)
		for i := range all {
			all[i] = bgp.LinkID(i)
		}
		cfg := configFromLinks(all, nil, 0)
		for i := range cfg.Anns {
			if cfg.Anns[i].Link == link {
				cfg.Anns[i].Poison = []topo.ASN{g.ASN(target)}
			}
		}
		key := cfg.String()
		if !seen[key] {
			seen[key] = true
			plan = append(plan, PlannedConfig{Config: cfg, Phase: PhasePoisoning})
		}
	}
	return plan
}
