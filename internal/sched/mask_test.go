package sched

import (
	"reflect"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
)

// maskCatchments: config 0 splits {0,1}|{2,3}, config 1 splits
// {0,2}|{1,3}, config 2 splits {0}|{1,2,3} less evenly.
var maskCatchments = [][]bgp.LinkID{
	{0, 0, 1, 1},
	{0, 1, 0, 1},
	{0, 1, 1, 1},
}

func TestNextGreedyMasked(t *testing.T) {
	p := cluster.New(4)
	used := make([]bool, 3)
	if got := NextGreedyMasked(p, maskCatchments, used, nil); got != 0 {
		t.Fatalf("nil mask: NextGreedyMasked = %d, want 0 (NextGreedy tie-break)", got)
	}
	if a, b := NextGreedy(p, maskCatchments, used), NextGreedyMasked(p, maskCatchments, used, nil); a != b {
		t.Fatalf("NextGreedy %d != NextGreedyMasked nil %d", a, b)
	}
	// Quarantine config 0: planning routes around it.
	blocked := []bool{true, false, false}
	if got := NextGreedyMasked(p, maskCatchments, used, blocked); got != 1 {
		t.Fatalf("masked: NextGreedyMasked = %d, want 1", got)
	}
	// Everything blocked or used → -1.
	if got := NextGreedyMasked(p, maskCatchments, []bool{false, true, true}, []bool{true, false, false}); got != -1 {
		t.Fatalf("all unavailable: got %d, want -1", got)
	}
}

func TestNextGreedyVolumeMasked(t *testing.T) {
	p := cluster.New(4)
	vol := []float64{1, 1, 1, 1}
	used := make([]bool, 3)
	a := NextGreedyVolume(p, maskCatchments, vol, used)
	if b := NextGreedyVolumeMasked(p, maskCatchments, vol, used, nil); a != b {
		t.Fatalf("nil mask diverges: %d vs %d", a, b)
	}
	blocked := make([]bool, 3)
	blocked[a] = true
	if got := NextGreedyVolumeMasked(p, maskCatchments, vol, used, blocked); got == a || got == -1 {
		t.Fatalf("masked pick = %d, must avoid blocked %d", got, a)
	}
}

func TestRotationWindow(t *testing.T) {
	// Budget-bounded rounds must cover every target over ceil(n/budget)
	// consecutive rounds, deterministically.
	const n, budget = 10, 4
	for base := uint64(0); base < 5; base++ {
		seen := make(map[int]bool)
		rounds := (n + budget - 1) / budget
		for r := 0; r < rounds; r++ {
			w := RotationWindow(n, budget, base+uint64(r))
			if len(w) != budget {
				t.Fatalf("round %d: window size %d, want %d", r, len(w), budget)
			}
			for _, i := range w {
				if i < 0 || i >= n {
					t.Fatalf("round %d: index %d out of range", r, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("base %d: %d/%d targets covered in %d rounds", base, len(seen), n, rounds)
		}
	}
	// Determinism: the same round always yields the same window.
	if !reflect.DeepEqual(RotationWindow(10, 4, 3), RotationWindow(10, 4, 3)) {
		t.Fatal("RotationWindow not deterministic")
	}
	// Unbounded budget (or zero) covers everything in one round.
	for _, b := range []int{0, 10, 99} {
		if w := RotationWindow(10, b, 7); len(w) != 10 {
			t.Fatalf("budget %d: window %v, want all 10", b, w)
		}
	}
	if RotationWindow(0, 4, 0) != nil {
		t.Fatal("n=0 must yield nil")
	}
}

func TestQuarantineMask(t *testing.T) {
	plan := []PlannedConfig{
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}}}},
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 2}}}},
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 1}, {Link: 2}}}},
	}
	none := func(bgp.LinkID) bool { return false }
	if m := QuarantineMask(plan, none); m != nil {
		t.Fatalf("healthy links must yield a nil mask, got %v", m)
	}
	quarantine1 := func(l bgp.LinkID) bool { return l == 1 }
	if m := QuarantineMask(plan, quarantine1); !reflect.DeepEqual(m, []bool{true, false, true}) {
		t.Fatalf("mask = %v, want [true false true]", m)
	}
}
