package sched

import (
	"reflect"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
)

// maskCatchments: config 0 splits {0,1}|{2,3}, config 1 splits
// {0,2}|{1,3}, config 2 splits {0}|{1,2,3} less evenly.
var maskCatchments = [][]bgp.LinkID{
	{0, 0, 1, 1},
	{0, 1, 0, 1},
	{0, 1, 1, 1},
}

func TestNextGreedyMasked(t *testing.T) {
	p := cluster.New(4)
	used := make([]bool, 3)
	if got := NextGreedyMasked(p, maskCatchments, used, nil); got != 0 {
		t.Fatalf("nil mask: NextGreedyMasked = %d, want 0 (NextGreedy tie-break)", got)
	}
	if a, b := NextGreedy(p, maskCatchments, used), NextGreedyMasked(p, maskCatchments, used, nil); a != b {
		t.Fatalf("NextGreedy %d != NextGreedyMasked nil %d", a, b)
	}
	// Quarantine config 0: planning routes around it.
	blocked := []bool{true, false, false}
	if got := NextGreedyMasked(p, maskCatchments, used, blocked); got != 1 {
		t.Fatalf("masked: NextGreedyMasked = %d, want 1", got)
	}
	// Everything blocked or used → -1.
	if got := NextGreedyMasked(p, maskCatchments, []bool{false, true, true}, []bool{true, false, false}); got != -1 {
		t.Fatalf("all unavailable: got %d, want -1", got)
	}
}

func TestNextGreedyVolumeMasked(t *testing.T) {
	p := cluster.New(4)
	vol := []float64{1, 1, 1, 1}
	used := make([]bool, 3)
	a := NextGreedyVolume(p, maskCatchments, vol, used)
	if b := NextGreedyVolumeMasked(p, maskCatchments, vol, used, nil); a != b {
		t.Fatalf("nil mask diverges: %d vs %d", a, b)
	}
	blocked := make([]bool, 3)
	blocked[a] = true
	if got := NextGreedyVolumeMasked(p, maskCatchments, vol, used, blocked); got == a || got == -1 {
		t.Fatalf("masked pick = %d, must avoid blocked %d", got, a)
	}
}

func TestQuarantineMask(t *testing.T) {
	plan := []PlannedConfig{
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}}}},
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 2}}}},
		{Config: bgp.Config{Anns: []bgp.Announcement{{Link: 1}, {Link: 2}}}},
	}
	none := func(bgp.LinkID) bool { return false }
	if m := QuarantineMask(plan, none); m != nil {
		t.Fatalf("healthy links must yield a nil mask, got %v", m)
	}
	quarantine1 := func(l bgp.LinkID) bool { return l == 1 }
	if m := QuarantineMask(plan, quarantine1); !reflect.DeepEqual(m, []bool{true, false, true}) {
		t.Fatalf("mask = %v, want [true false true]", m)
	}
}
