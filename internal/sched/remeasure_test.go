package sched

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
)

func TestNextGreedyVolumeScoredMatchesMasked(t *testing.T) {
	p := cluster.New(4)
	vol := []float64{4, 1, 1, 2}
	used := make([]bool, 3)
	want := NextGreedyVolumeMasked(p, maskCatchments, vol, used, nil)
	got, scores := NextGreedyVolumeScored(p, maskCatchments, vol, used, nil)
	if got != want {
		t.Fatalf("scored winner %d != masked winner %d", got, want)
	}
	if len(scores) != 3 {
		t.Fatalf("scores cover %d configs, want all 3: %+v", len(scores), scores)
	}
	for i, s := range scores {
		if s.Config != i {
			t.Fatalf("scores not in ascending config order: %+v", scores)
		}
		if want := p.WeightedMeanSizeAfter(maskCatchments[i], vol); s.Score != want {
			t.Fatalf("config %d score %v, want %v", i, s.Score, want)
		}
		if s.Score < scores[got].Score {
			t.Fatalf("winner %d (score %v) beaten by config %d (score %v)", got, scores[got].Score, i, s.Score)
		}
	}

	// Used and blocked configurations drop out of the candidate set.
	got2, scores2 := NextGreedyVolumeScored(p, maskCatchments, vol, []bool{false, true, false}, []bool{true, false, false})
	if got2 != 2 || len(scores2) != 1 || scores2[0].Config != 2 {
		t.Fatalf("filtered: winner %d scores %+v, want only config 2", got2, scores2)
	}
	// Nothing eligible → -1 and no scores.
	got3, scores3 := NextGreedyVolumeScored(p, maskCatchments, vol, []bool{true, true, true}, nil)
	if got3 != -1 || len(scores3) != 0 {
		t.Fatalf("exhausted: winner %d scores %+v", got3, scores3)
	}
}

func TestNextRemeasure(t *testing.T) {
	no := bgp.NoLink
	catchments := [][]bgp.LinkID{
		{0, no, no, no}, // sees hint 0 only
		{0, 1, no, no},  // sees hints 0 and 1 on two links
		{0, 0, no, no},  // sees hints 0 and 1 on one link
		{no, no, 2, 2},  // sees no hinted source
	}
	used := make([]bool, 4)
	hints := []int{0, 1}

	// Config 1 and 2 both see two hinted sources; 1 wins the distinct-
	// link tie-break.
	if got := NextRemeasure(catchments, hints, used, nil); got != 1 {
		t.Fatalf("NextRemeasure = %d, want 1", got)
	}
	// With 1 used, 2 wins (same coverage, fewer links, lower index than
	// nothing).
	if got := NextRemeasure(catchments, hints, []bool{false, true, false, false}, nil); got != 2 {
		t.Fatalf("used-filtered NextRemeasure = %d, want 2", got)
	}
	// Blocked works the same way.
	if got := NextRemeasure(catchments, hints, used, []bool{false, true, false, false}); got != 2 {
		t.Fatalf("blocked-filtered NextRemeasure = %d, want 2", got)
	}
	// Equal coverage and equal link spread: lowest index wins.
	if got := NextRemeasure(catchments, []int{0}, used, nil); got != 0 {
		t.Fatalf("tie: NextRemeasure = %d, want 0", got)
	}
	// No hints, or no configuration observing any hint, skips the round.
	if got := NextRemeasure(catchments, nil, used, nil); got != -1 {
		t.Fatalf("no hints: NextRemeasure = %d, want -1", got)
	}
	if got := NextRemeasure(catchments, []int{2}, []bool{false, false, false, true}, nil); got != -1 {
		t.Fatalf("unobservable hint: NextRemeasure = %d, want -1", got)
	}
	// Out-of-range hints are ignored, not a panic.
	if got := NextRemeasure(catchments, []int{-1, 99, 0}, used, nil); got != 0 {
		t.Fatalf("out-of-range hints: NextRemeasure = %d, want 0", got)
	}
}
