// Package sched generates announcement plans (§III-A) and deployment
// schedules (§V-C).
//
// A plan is the ordered list of configurations the three techniques
// produce: (a) announcing from subsets of peering locations in decreasing
// size order, (b) adding AS-path prepending from each active location in
// turn, and (c) announcing from all locations while poisoning one
// neighbor of a directly connected transit provider. With 7 links,
// removing up to 3 and prepending singletons, this is the paper's
// 64 + 294 + 347 = 705-configuration campaign (§IV-a).
//
// Schedules order precomputed configurations for deployment at attack
// time: random baselines and the greedy strategy that picks, at each
// step, the configuration minimizing the resulting mean cluster size
// (Fig. 8).
package sched

import (
	"fmt"
	"sort"

	"spooftrack/internal/bgp"
	"spooftrack/internal/topo"
)

// Phase identifies which technique generated a configuration.
type Phase int

const (
	// PhaseLocations varies the set of announcement locations (§III-A-a).
	PhaseLocations Phase = iota
	// PhasePrepending adds AS-path prepending (§III-A-b).
	PhasePrepending
	// PhasePoisoning poisons neighbors of providers (§III-A-c).
	PhasePoisoning
	// PhaseCommunities controls export with provider action communities
	// (§VIII future work) — the library's fourth technique.
	PhaseCommunities
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseLocations:
		return "locations"
	case PhasePrepending:
		return "prepending"
	case PhasePoisoning:
		return "poisoning"
	case PhaseCommunities:
		return "communities"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PlannedConfig is one configuration of a campaign plan with its
// generating phase.
type PlannedConfig struct {
	Config bgp.Config
	Phase  Phase
}

// PlanParams controls plan generation.
type PlanParams struct {
	// NumLinks is the number of peering links L of the origin.
	NumLinks int
	// RemoveUpTo is the maximum number of links withdrawn in the
	// location phase (the paper's r-1 = 3, guaranteeing at least r = 4
	// routes per source).
	RemoveUpTo int
	// PrependDepth is how many times announcements prepend (paper: 4).
	PrependDepth int
	// PoisonTargets lists, per link, the ASNs to poison one at a time
	// on that link while announcing from all locations (neighbors of the
	// link's provider).
	PoisonTargets map[bgp.LinkID][]topo.ASN
}

// DefaultPlanParams mirrors the paper's campaign shape for a given
// number of links.
func DefaultPlanParams(numLinks int) PlanParams {
	return PlanParams{NumLinks: numLinks, RemoveUpTo: 3, PrependDepth: 4}
}

// GeneratePlan produces the full three-phase plan. Within the location
// phase, subsets appear in decreasing size order and lexicographically
// within a size; the prepending phase follows the same subset order,
// prepending from each active location in turn; the poisoning phase
// iterates links then targets. The order matters: Fig. 4 plots cluster
// sizes in deployment order.
func GeneratePlan(p PlanParams) ([]PlannedConfig, error) {
	if p.NumLinks < 1 {
		return nil, fmt.Errorf("sched: NumLinks=%d", p.NumLinks)
	}
	if p.RemoveUpTo < 0 || p.RemoveUpTo >= p.NumLinks {
		return nil, fmt.Errorf("sched: RemoveUpTo=%d out of [0,%d)", p.RemoveUpTo, p.NumLinks)
	}
	var plan []PlannedConfig

	// Phase a: subsets of links in decreasing size order.
	var subsets [][]bgp.LinkID
	for removed := 0; removed <= p.RemoveUpTo; removed++ {
		size := p.NumLinks - removed
		for _, s := range combinations(p.NumLinks, size) {
			subsets = append(subsets, s)
			plan = append(plan, PlannedConfig{Config: configFromLinks(s, nil, 0), Phase: PhaseLocations})
		}
	}

	// Phase b: for each subset, prepend from each active location in
	// turn.
	for _, s := range subsets {
		for _, prependAt := range s {
			plan = append(plan, PlannedConfig{
				Config: configFromLinks(s, []bgp.LinkID{prependAt}, p.PrependDepth),
				Phase:  PhasePrepending,
			})
		}
	}

	// Phase c: announce everywhere, poisoning one provider neighbor at
	// a time on the link behind which it sits.
	all := make([]bgp.LinkID, p.NumLinks)
	for i := range all {
		all[i] = bgp.LinkID(i)
	}
	links := make([]bgp.LinkID, 0, len(p.PoisonTargets))
	for l := range p.PoisonTargets {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		targets := append([]topo.ASN(nil), p.PoisonTargets[l]...)
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, target := range targets {
			cfg := configFromLinks(all, nil, 0)
			for k := range cfg.Anns {
				if cfg.Anns[k].Link == l {
					cfg.Anns[k].Poison = []topo.ASN{target}
				}
			}
			plan = append(plan, PlannedConfig{Config: cfg, Phase: PhasePoisoning})
		}
	}
	return plan, nil
}

// PhaseCounts returns how many configurations each phase contributes.
func PhaseCounts(plan []PlannedConfig) map[Phase]int {
	out := make(map[Phase]int, 3)
	for _, pc := range plan {
		out[pc.Phase]++
	}
	return out
}

// PhaseEnd returns the index one past the last configuration of the
// phase, assuming the canonical ordering produced by GeneratePlan.
func PhaseEnd(plan []PlannedConfig, p Phase) int {
	end := 0
	for i, pc := range plan {
		if pc.Phase <= p {
			end = i + 1
		}
	}
	return end
}

// CommunityPlan generates one configuration per (link, provider
// neighbor) pair: announce from all links, tagging the link's
// announcement with a no-export action community instructing the link's
// provider not to export toward that neighbor. This induces the same
// kind of edge removal as poisoning (§III-A-c) but does not depend on
// loop prevention and does not trip route-leak filters — it depends
// instead on the provider implementing action communities.
func CommunityPlan(numLinks int, providerOf map[bgp.LinkID]topo.ASN, targets map[bgp.LinkID][]topo.ASN) []PlannedConfig {
	all := make([]bgp.LinkID, numLinks)
	for i := range all {
		all[i] = bgp.LinkID(i)
	}
	links := make([]bgp.LinkID, 0, len(targets))
	for l := range targets {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	var plan []PlannedConfig
	for _, l := range links {
		operator, ok := providerOf[l]
		if !ok {
			continue
		}
		ts := append([]topo.ASN(nil), targets[l]...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, target := range ts {
			cfg := configFromLinks(all, nil, 0)
			for k := range cfg.Anns {
				if cfg.Anns[k].Link == l {
					cfg.Anns[k].Communities = []bgp.Community{{
						Operator: operator,
						Action:   bgp.ActNoExportTo,
						Target:   target,
					}}
				}
			}
			plan = append(plan, PlannedConfig{Config: cfg, Phase: PhaseCommunities})
		}
	}
	return plan
}

// configFromLinks builds a configuration announcing from the given
// links, prepending depth times on the links in prepend.
func configFromLinks(links, prepend []bgp.LinkID, depth int) bgp.Config {
	pset := make(map[bgp.LinkID]bool, len(prepend))
	for _, l := range prepend {
		pset[l] = true
	}
	cfg := bgp.Config{Anns: make([]bgp.Announcement, len(links))}
	for i, l := range links {
		cfg.Anns[i] = bgp.Announcement{Link: l}
		if pset[l] {
			cfg.Anns[i].Prepend = depth
		}
	}
	return cfg
}

// combinations enumerates all size-k subsets of {0..n-1} in
// lexicographic order.
func combinations(n, k int) [][]bgp.LinkID {
	if k < 0 || k > n {
		return nil
	}
	var out [][]bgp.LinkID
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		s := make([]bgp.LinkID, k)
		for i, v := range idx {
			s[i] = bgp.LinkID(v)
		}
		out = append(out, s)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
