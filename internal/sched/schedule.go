package sched

import (
	"fmt"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/stats"
)

// A schedule operates on precomputed catchment measurements: when
// localizing during an attack, the origin deploys configurations whose
// catchments it measured beforehand and assumes routes are stable
// (§V-C). catchments[c][k] is the catchment of source k under
// configuration c.

// Trajectory is the mean cluster size after each deployed configuration.
type Trajectory []float64

// RandomTrajectory deploys the configurations in a random order (without
// repetition) and reports the mean cluster size after each step.
func RandomTrajectory(catchments [][]bgp.LinkID, rng *stats.RNG) Trajectory {
	if len(catchments) == 0 {
		return nil
	}
	n := len(catchments[0])
	order := rng.Perm(len(catchments))
	p := cluster.New(n)
	out := make(Trajectory, 0, len(catchments))
	for _, c := range order {
		p.Refine(catchments[c])
		out = append(out, p.Summarize().MeanSize)
	}
	return out
}

// RandomEnsemble runs nSeq random trajectories and reports, per step,
// the 25th percentile, median, and 75th percentile of the mean cluster
// size across sequences (the paper's Fig. 8 shades variance over 30,000
// sequences).
func RandomEnsemble(catchments [][]bgp.LinkID, nSeq int, seed uint64) (p25, median, p75 Trajectory) {
	if len(catchments) == 0 || nSeq <= 0 {
		return nil, nil, nil
	}
	steps := len(catchments)
	perStep := make([][]float64, steps)
	for i := range perStep {
		perStep[i] = make([]float64, 0, nSeq)
	}
	rng := stats.NewRNG(seed ^ 0x5eed5c4ed)
	for s := 0; s < nSeq; s++ {
		tr := RandomTrajectory(catchments, rng.Split())
		for i, v := range tr {
			perStep[i] = append(perStep[i], v)
		}
	}
	p25 = make(Trajectory, steps)
	median = make(Trajectory, steps)
	p75 = make(Trajectory, steps)
	for i := range perStep {
		p25[i] = stats.Percentile(perStep[i], 25)
		median[i] = stats.Percentile(perStep[i], 50)
		p75[i] = stats.Percentile(perStep[i], 75)
	}
	return p25, median, p75
}

// NextGreedy returns the index of the not-yet-used configuration whose
// refinement of p yields the most clusters (equivalently, the smallest
// mean cluster size), or -1 if every configuration is used. Ties break
// toward the lowest index for determinism. This is the single step the
// live pipeline (internal/stream) asks for between attack rounds;
// GreedyTrajectory iterates it.
func NextGreedy(p *cluster.Partition, catchments [][]bgp.LinkID, used []bool) int {
	return NextGreedyMasked(p, catchments, used, nil)
}

// NextGreedyMasked is NextGreedy with a routing mask: configurations
// with blocked[c] set are skipped as if used (their links are
// quarantined by the platform's health breaker). A nil mask is
// NextGreedy. The mask only affects which configuration is chosen next,
// never the catchments themselves, so localization stays correct — just
// routed around unhealthy links.
func NextGreedyMasked(p *cluster.Partition, catchments [][]bgp.LinkID, used, blocked []bool) int {
	best, bestClusters := -1, -1
	for c := range catchments {
		if used[c] || (blocked != nil && blocked[c]) {
			continue
		}
		k := p.NumClustersAfter(catchments[c])
		if k > bestClusters || (k == bestClusters && (best == -1 || c < best)) {
			best, bestClusters = c, k
		}
	}
	return best
}

// QuarantineMask computes the per-configuration blocked mask for a
// plan: blocked[c] is true when any announcement of configuration c
// rides a link isQuarantined reports unhealthy. It returns nil when no
// configuration is blocked, so fault-free callers pay one scan and no
// allocation.
func QuarantineMask(plan []PlannedConfig, isQuarantined func(bgp.LinkID) bool) []bool {
	var blocked []bool
	for c := range plan {
		for _, a := range plan[c].Config.Anns {
			if isQuarantined(a.Link) {
				if blocked == nil {
					blocked = make([]bool, len(plan))
				}
				blocked[c] = true
				break
			}
		}
	}
	return blocked
}

// RotationWindow returns the target indices a budget-bounded scan round
// should cover, rotating fairly through all n targets: round r covers
// budget consecutive indices starting at (r*budget) mod n, wrapping, so
// ceil(n/budget) consecutive rounds touch every target and every target
// is revisited at the same cadence. With budget >= n (or budget <= 0)
// the window is simply all n targets. The probe scan loop
// (internal/probe) schedules its per-round spoof-probe targets with
// this.
func RotationWindow(n, budget int, round uint64) []int {
	if n <= 0 {
		return nil
	}
	if budget <= 0 || budget >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	start := int((round * uint64(budget)) % uint64(n))
	out := make([]int, budget)
	for i := range out {
		out[i] = (start + i) % n
	}
	return out
}

// GreedyTrajectory deploys, at every step, the not-yet-deployed
// configuration that minimizes the resulting mean cluster size (§V-C's
// "iterative algorithm"). maxSteps bounds the trajectory length (the
// interesting region is the first tens of configurations); pass 0 for
// all configurations. It returns the trajectory and the chosen
// deployment order.
func GreedyTrajectory(catchments [][]bgp.LinkID, maxSteps int) (Trajectory, []int) {
	if len(catchments) == 0 {
		return nil, nil
	}
	n := len(catchments[0])
	steps := len(catchments)
	if maxSteps > 0 && maxSteps < steps {
		steps = maxSteps
	}
	used := make([]bool, len(catchments))
	p := cluster.New(n)
	traj := make(Trajectory, 0, steps)
	order := make([]int, 0, steps)
	for len(order) < steps {
		best := NextGreedy(p, catchments, used)
		if best == -1 {
			break
		}
		used[best] = true
		p.Refine(catchments[best])
		order = append(order, best)
		traj = append(traj, p.Summarize().MeanSize)
	}
	return traj, order
}

// GreedyVolumeTrajectory implements the paper's future-work extension
// (§VIII-(i)): jointly optimize cluster size and spoofed traffic volume
// by choosing the configuration that minimizes the volume-weighted mean
// cluster size — splitting clusters inferred to send more spoofed
// traffic first. volume[k] is the spoofed-traffic weight of source k.
func GreedyVolumeTrajectory(catchments [][]bgp.LinkID, volume []float64, maxSteps int) (Trajectory, []int) {
	if len(catchments) == 0 {
		return nil, nil
	}
	n := len(catchments[0])
	if len(volume) != n {
		panic(fmt.Sprintf("sched: %d volumes for %d sources", len(volume), n))
	}
	steps := len(catchments)
	if maxSteps > 0 && maxSteps < steps {
		steps = maxSteps
	}
	used := make([]bool, len(catchments))
	p := cluster.New(n)
	traj := make(Trajectory, 0, steps)
	order := make([]int, 0, steps)
	for len(order) < steps {
		best := NextGreedyVolume(p, catchments, volume, used)
		if best == -1 {
			break
		}
		used[best] = true
		p.Refine(catchments[best])
		order = append(order, best)
		traj = append(traj, volumeWeightedMeanSize(p, volume))
	}
	return traj, order
}

// NextGreedyVolume returns the not-yet-used configuration minimizing
// the volume-weighted mean cluster size after refinement, or -1 if all
// are used. With live volume estimates from a honeypot, this prefers
// configurations that split the clusters currently sending the most
// spoofed traffic (§VIII-(i)).
func NextGreedyVolume(p *cluster.Partition, catchments [][]bgp.LinkID, volume []float64, used []bool) int {
	return NextGreedyVolumeMasked(p, catchments, volume, used, nil)
}

// NextGreedyVolumeMasked is NextGreedyVolume with a quarantine mask:
// blocked configurations are skipped as if used. A nil mask is
// NextGreedyVolume. Candidate scoring rides the incremental path
// (cluster.WeightedMeanSizeAfter): each candidate is scored through one
// flat-table pass instead of cloning and refining the partition per
// configuration.
func NextGreedyVolumeMasked(p *cluster.Partition, catchments [][]bgp.LinkID, volume []float64, used, blocked []bool) int {
	best := -1
	bestScore := 0.0
	for c := range catchments {
		if used[c] || (blocked != nil && blocked[c]) {
			continue
		}
		score := p.WeightedMeanSizeAfter(catchments[c], volume)
		if best == -1 || score < bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// ConfigScore is one configuration's score in a greedy decision (lower
// is better for volume-weighted mean cluster size).
type ConfigScore struct {
	Config int     `json:"config"`
	Score  float64 `json:"score"`
}

// NextGreedyVolumeScored is NextGreedyVolumeMasked returning, alongside
// the winner, the score of every eligible candidate in ascending
// configuration order — the candidate set the chosen configuration
// beat, which the provenance ledger records so a replay can re-derive
// the decision. The winner is identical to NextGreedyVolumeMasked's.
func NextGreedyVolumeScored(p *cluster.Partition, catchments [][]bgp.LinkID, volume []float64, used, blocked []bool) (int, []ConfigScore) {
	best := -1
	bestScore := 0.0
	var scores []ConfigScore
	for c := range catchments {
		if used[c] || (blocked != nil && blocked[c]) {
			continue
		}
		score := p.WeightedMeanSizeAfter(catchments[c], volume)
		scores = append(scores, ConfigScore{Config: c, Score: score})
		if best == -1 || score < bestScore {
			best, bestScore = c, score
		}
	}
	return best, scores
}

// NextRemeasure picks the configuration to deploy for probe-conflict
// re-measurement: among unused, unblocked configurations, the one that
// re-observes the most hinted sources (catchment known, not
// bgp.NoLink). Ties break toward the configuration spreading the
// hinted sources across more distinct ingress links (more refinement
// potential per round), then toward the lowest index for determinism.
// It returns -1 when no configuration observes any hinted source —
// callers skip re-measurement that round. hints are source positions,
// typically probe.Audit's conflict set mapped through the campaign
// source list.
func NextRemeasure(catchments [][]bgp.LinkID, hints []int, used, blocked []bool) int {
	if len(hints) == 0 {
		return -1
	}
	best, bestSeen, bestLinks := -1, 0, 0
	for c := range catchments {
		if used[c] || (blocked != nil && blocked[c]) {
			continue
		}
		row := catchments[c]
		seen := 0
		links := map[bgp.LinkID]bool{}
		for _, k := range hints {
			if k < 0 || k >= len(row) || row[k] == bgp.NoLink {
				continue
			}
			seen++
			links[row[k]] = true
		}
		if seen == 0 {
			continue
		}
		if seen > bestSeen || (seen == bestSeen && len(links) > bestLinks) {
			best, bestSeen, bestLinks = c, seen, len(links)
		}
	}
	return best
}

// volumeWeightedMeanSize is the expected size of the cluster a unit of
// spoofed traffic falls into: sum over sources of volume-share times
// cluster size.
func volumeWeightedMeanSize(p *cluster.Partition, volume []float64) float64 {
	sizes := p.Sizes()
	total, acc := 0.0, 0.0
	for k, v := range volume {
		total += v
		acc += v * float64(sizes[p.ClusterOf(k)])
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// FullTrajectory deploys configurations in plan order and reports mean
// and 90th-percentile cluster size after each (Fig. 4's two lines).
func FullTrajectory(catchments [][]bgp.LinkID) (mean, p90 Trajectory) {
	if len(catchments) == 0 {
		return nil, nil
	}
	p := cluster.New(len(catchments[0]))
	mean = make(Trajectory, 0, len(catchments))
	p90 = make(Trajectory, 0, len(catchments))
	for _, c := range catchments {
		p.Refine(c)
		m := p.Summarize()
		mean = append(mean, m.MeanSize)
		p90 = append(p90, m.P90Size)
	}
	return mean, p90
}
