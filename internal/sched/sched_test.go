package sched

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

func TestGeneratePlanPaperCounts(t *testing.T) {
	// With 7 links, removing up to 3, and 347 poison targets, the plan
	// must match the paper's 64 + 294 + 347 = 705 configurations.
	targets := map[bgp.LinkID][]topo.ASN{}
	asn := topo.ASN(1000)
	for l := 0; l < 7; l++ {
		n := 50
		if l == 6 {
			n = 47
		}
		for k := 0; k < n; k++ {
			targets[bgp.LinkID(l)] = append(targets[bgp.LinkID(l)], asn)
			asn++
		}
	}
	p := DefaultPlanParams(7)
	p.PoisonTargets = targets
	plan, err := GeneratePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := PhaseCounts(plan)
	if counts[PhaseLocations] != 64 {
		t.Errorf("locations = %d, want 64", counts[PhaseLocations])
	}
	if counts[PhasePrepending] != 294 {
		t.Errorf("prepending = %d, want 294", counts[PhasePrepending])
	}
	if counts[PhasePoisoning] != 347 {
		t.Errorf("poisoning = %d, want 347", counts[PhasePoisoning])
	}
	if len(plan) != 705 {
		t.Errorf("total = %d, want 705", len(plan))
	}
}

func TestGeneratePlanOrdering(t *testing.T) {
	p := DefaultPlanParams(4)
	p.RemoveUpTo = 2
	p.PoisonTargets = map[bgp.LinkID][]topo.ASN{0: {100, 101}}
	plan, err := GeneratePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// First config announces from all links with no prepending.
	first := plan[0]
	if first.Phase != PhaseLocations || len(first.Config.Anns) != 4 {
		t.Fatalf("first config %v, want full anycast", first)
	}
	for _, a := range first.Config.Anns {
		if a.Prepend != 0 || len(a.Poison) != 0 {
			t.Fatal("baseline config must be plain anycast")
		}
	}
	// Location-phase subset sizes never increase.
	prevSize := 5
	for _, pc := range plan {
		if pc.Phase != PhaseLocations {
			break
		}
		if len(pc.Config.Anns) > prevSize {
			t.Fatal("location subsets must come in decreasing size order")
		}
		prevSize = len(pc.Config.Anns)
	}
	// Phases come in order.
	last := PhaseLocations
	for _, pc := range plan {
		if pc.Phase < last {
			t.Fatal("phases out of order")
		}
		last = pc.Phase
	}
	// PhaseEnd boundaries are consistent with counts.
	counts := PhaseCounts(plan)
	if PhaseEnd(plan, PhaseLocations) != counts[PhaseLocations] {
		t.Fatal("PhaseEnd(locations) inconsistent")
	}
	if PhaseEnd(plan, PhasePrepending) != counts[PhaseLocations]+counts[PhasePrepending] {
		t.Fatal("PhaseEnd(prepending) inconsistent")
	}
	if PhaseEnd(plan, PhasePoisoning) != len(plan) {
		t.Fatal("PhaseEnd(poisoning) inconsistent")
	}
}

func TestGeneratePlanPrependsSingletons(t *testing.T) {
	p := DefaultPlanParams(3)
	p.RemoveUpTo = 1
	plan, err := GeneratePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range plan {
		if pc.Phase != PhasePrepending {
			continue
		}
		prepended := 0
		for _, a := range pc.Config.Anns {
			if a.Prepend > 0 {
				if a.Prepend != p.PrependDepth {
					t.Fatalf("prepend depth %d, want %d", a.Prepend, p.PrependDepth)
				}
				prepended++
			}
		}
		if prepended != 1 {
			t.Fatalf("prepending config prepends %d links, want 1", prepended)
		}
	}
}

func TestGeneratePlanPoisonConfigs(t *testing.T) {
	p := DefaultPlanParams(3)
	p.RemoveUpTo = 0
	p.PoisonTargets = map[bgp.LinkID][]topo.ASN{1: {200}, 0: {100}}
	plan, err := GeneratePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var poisonCfgs []PlannedConfig
	for _, pc := range plan {
		if pc.Phase == PhasePoisoning {
			poisonCfgs = append(poisonCfgs, pc)
		}
	}
	if len(poisonCfgs) != 2 {
		t.Fatalf("got %d poison configs, want 2", len(poisonCfgs))
	}
	// Deterministic order: link 0 first.
	cfg0 := poisonCfgs[0].Config
	for _, a := range cfg0.Anns {
		if a.Link == 0 {
			if len(a.Poison) != 1 || a.Poison[0] != 100 {
				t.Fatalf("link 0 poison = %v, want [100]", a.Poison)
			}
		} else if len(a.Poison) != 0 {
			t.Fatal("poison leaked to other links")
		}
	}
	// Poison configs announce from all links.
	if len(cfg0.Anns) != 3 {
		t.Fatal("poison config must announce everywhere")
	}
}

func TestCommunityPlan(t *testing.T) {
	providerOf := map[bgp.LinkID]topo.ASN{0: 10, 1: 20}
	targets := map[bgp.LinkID][]topo.ASN{1: {200, 100}, 0: {50}}
	plan := CommunityPlan(3, providerOf, targets)
	if len(plan) != 3 {
		t.Fatalf("got %d configs, want 3", len(plan))
	}
	for _, pc := range plan {
		if pc.Phase != PhaseCommunities {
			t.Fatal("wrong phase")
		}
		if len(pc.Config.Anns) != 3 {
			t.Fatal("community configs must announce from all links")
		}
		tagged := 0
		for _, a := range pc.Config.Anns {
			for _, c := range a.Communities {
				tagged++
				if c.Action != bgp.ActNoExportTo {
					t.Fatal("wrong action")
				}
				if c.Operator != providerOf[a.Link] {
					t.Fatalf("community operator %d not the link provider", c.Operator)
				}
			}
		}
		if tagged != 1 {
			t.Fatalf("%d communities per config, want 1", tagged)
		}
	}
	// Deterministic ordering: link 0 first, then link 1 targets sorted.
	first := plan[0].Config.Anns
	for _, a := range first {
		if a.Link == 0 && (len(a.Communities) != 1 || a.Communities[0].Target != 50) {
			t.Fatal("ordering wrong")
		}
	}
	// Links without a provider entry are skipped.
	planMissing := CommunityPlan(3, map[bgp.LinkID]topo.ASN{}, targets)
	if len(planMissing) != 0 {
		t.Fatal("plan generated without provider mapping")
	}
}

func TestGeneratePlanErrors(t *testing.T) {
	if _, err := GeneratePlan(PlanParams{NumLinks: 0}); err == nil {
		t.Fatal("expected error for zero links")
	}
	if _, err := GeneratePlan(PlanParams{NumLinks: 3, RemoveUpTo: 3}); err == nil {
		t.Fatal("expected error for RemoveUpTo >= NumLinks")
	}
	if _, err := GeneratePlan(PlanParams{NumLinks: 3, RemoveUpTo: -1}); err == nil {
		t.Fatal("expected error for negative RemoveUpTo")
	}
}

func TestCombinations(t *testing.T) {
	cs := combinations(4, 2)
	if len(cs) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(cs))
	}
	// Lexicographic: first {0,1}, last {2,3}.
	if cs[0][0] != 0 || cs[0][1] != 1 || cs[5][0] != 2 || cs[5][1] != 3 {
		t.Fatalf("combinations = %v", cs)
	}
	if len(combinations(3, 0)) != 1 {
		t.Fatal("C(3,0) should be the empty set only")
	}
	if combinations(3, 4) != nil {
		t.Fatal("C(3,4) should be nil")
	}
}

// toyCatchments builds a small catchment matrix: 8 sources, 4 configs
// that fully separate sources only if all are deployed.
func toyCatchments() [][]bgp.LinkID {
	return [][]bgp.LinkID{
		{0, 0, 0, 0, 1, 1, 1, 1},
		{0, 0, 1, 1, 0, 0, 1, 1},
		{0, 1, 0, 1, 0, 1, 0, 1},
		{0, 0, 0, 0, 0, 0, 0, 0}, // useless config
	}
}

func TestRandomTrajectoryShape(t *testing.T) {
	cs := toyCatchments()
	tr := RandomTrajectory(cs, stats.NewRNG(1))
	if len(tr) != len(cs) {
		t.Fatalf("trajectory length %d, want %d", len(tr), len(cs))
	}
	// Mean size is non-increasing.
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1] {
			t.Fatal("mean cluster size increased")
		}
	}
	// All informative configs deployed: 8 singletons, mean 1.
	if tr[len(tr)-1] != 1 {
		t.Fatalf("final mean %v, want 1", tr[len(tr)-1])
	}
}

func TestRandomEnsemblePercentilesOrdered(t *testing.T) {
	cs := toyCatchments()
	p25, med, p75 := RandomEnsemble(cs, 50, 7)
	for i := range med {
		if p25[i] > med[i] || med[i] > p75[i] {
			t.Fatalf("percentiles out of order at step %d: %v %v %v", i, p25[i], med[i], p75[i])
		}
	}
}

func TestGreedyBeatsOrMatchesRandomEarly(t *testing.T) {
	cs := toyCatchments()
	greedy, order := GreedyTrajectory(cs, 0)
	_, med, _ := RandomEnsemble(cs, 200, 3)
	// After one config, greedy must be at least as good as the median
	// random choice (greedy picks the most informative config first).
	if greedy[0] > med[0] {
		t.Fatalf("greedy[0]=%v worse than random median %v", greedy[0], med[0])
	}
	// Greedy must not pick the useless config first.
	if order[0] == 3 {
		t.Fatal("greedy picked the uninformative config first")
	}
}

func TestGreedyMaxSteps(t *testing.T) {
	cs := toyCatchments()
	tr, order := GreedyTrajectory(cs, 2)
	if len(tr) != 2 || len(order) != 2 {
		t.Fatalf("got %d steps, want 2", len(tr))
	}
}

func TestGreedyEmpty(t *testing.T) {
	tr, order := GreedyTrajectory(nil, 0)
	if tr != nil || order != nil {
		t.Fatal("empty input should produce empty output")
	}
}

func TestGreedyVolumePrioritizesHeavyCluster(t *testing.T) {
	// Sources 0-3 carry all the traffic. Config 0 splits the heavy
	// sources; config 1 splits the light ones. Volume-aware greedy must
	// deploy config 0 first; size-only greedy has no preference.
	cs := [][]bgp.LinkID{
		{0, 0, 1, 1, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 1, 1},
	}
	volume := []float64{10, 10, 10, 10, 0, 0, 0, 0}
	_, order := GreedyVolumeTrajectory(cs, volume, 0)
	if order[0] != 0 {
		t.Fatalf("volume-aware greedy deployed config %d first, want 0", order[0])
	}
}

func TestGreedyVolumePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GreedyVolumeTrajectory(toyCatchments(), []float64{1}, 0)
}

func TestFullTrajectory(t *testing.T) {
	cs := toyCatchments()
	mean, p90 := FullTrajectory(cs)
	if len(mean) != 4 || len(p90) != 4 {
		t.Fatal("wrong trajectory length")
	}
	if mean[3] != 1 {
		t.Fatalf("final mean %v, want 1", mean[3])
	}
	for i := range mean {
		if p90[i] < mean[i]*0.5 {
			t.Fatalf("p90 %v implausibly below mean %v", p90[i], mean[i])
		}
	}
}

func TestPredictorMatchesNoiselessEngine(t *testing.T) {
	p := topo.DefaultGenParams(50)
	p.NumASes = 500
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Attach origin to two transit ASes.
	var provs []int
	for _, i := range g.TransitASes() {
		if !g.IsTier1(i) {
			provs = append(provs, i)
		}
		if len(provs) == 2 {
			break
		}
	}
	origin := bgp.Origin{ASN: 47065, Links: []bgp.Link{
		{Name: "a", Provider: provs[0]}, {Name: "b", Provider: provs[1]},
	}}
	pred, err := NewPredictor(g, origin)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}}}
	vec, err := pred.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != g.NumASes() {
		t.Fatal("prediction has wrong length")
	}
	routed := 0
	for _, l := range vec {
		if l != bgp.NoLink {
			routed++
		}
	}
	if routed != g.NumASes() {
		t.Fatalf("predictor routed %d of %d", routed, g.NumASes())
	}
}

func TestRankByPredictedGain(t *testing.T) {
	p := topo.DefaultGenParams(51)
	p.NumASes = 500
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var provs []int
	for _, i := range g.TransitASes() {
		if !g.IsTier1(i) {
			provs = append(provs, i)
		}
		if len(provs) == 3 {
			break
		}
	}
	origin := bgp.Origin{ASN: 47065, Links: []bgp.Link{
		{Name: "a", Provider: provs[0]}, {Name: "b", Provider: provs[1]}, {Name: "c", Provider: provs[2]},
	}}
	pred, err := NewPredictor(g, origin)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int, g.NumASes())
	for i := range sources {
		sources[i] = i
	}
	part := cluster.New(len(sources))
	cands := []bgp.Config{
		{Anns: []bgp.Announcement{{Link: 0}}},                       // single link: no split
		{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}, {Link: 2}}}, // full anycast: splits
	}
	order, err := pred.RankByPredictedGain(part, sources, cands)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Fatalf("rank order %v, want the anycast config first", order)
	}
}
