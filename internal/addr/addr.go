// Package addr allocates IPv4 address space to the ASes of a topology
// and provides IP-to-AS mapping, standing in for the Team Cymru service
// and PeeringDB IXP data the paper uses (§IV-b).
//
// Each AS receives one or more /20 blocks from a deterministic grid.
// Router interface addresses used in synthetic traceroutes are drawn from
// an AS's blocks; IXP interconnection segments live in a dedicated range
// that maps to no AS, exactly like real IXP peering LANs that confuse
// IP-to-AS mapping. A NoisyMapper injects deterministic mapping errors to
// model stale or incorrect registry data.
package addr

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// blockBits is the prefix length of each allocated block.
const blockBits = 20

// blockSize is the number of addresses per allocated block.
const blockSize = 1 << (32 - blockBits)

// base is the first address of the allocation grid (16.0.0.0).
const base = uint32(16) << 24

// ixpBase is the start of the IXP segment range (203.0.0.0), outside the
// allocation grid; addresses here map to no AS.
const ixpBase = uint32(203) << 24

// Space is an allocation of IPv4 blocks to ASes. Build one with Allocate;
// a Space is immutable and safe for concurrent use.
type Space struct {
	g *topo.Graph
	// blocks[i] lists the block numbers owned by AS index i.
	blocks [][]uint32
	// owner maps block number -> AS index.
	owner map[uint32]int
}

// Allocate assigns address blocks to every AS in the graph: one block per
// AS, plus one extra block per 8 customers for transit networks (larger
// networks hold more space). Allocation is deterministic for a graph.
func Allocate(g *topo.Graph) *Space {
	s := &Space{
		g:      g,
		blocks: make([][]uint32, g.NumASes()),
		owner:  make(map[uint32]int),
	}
	next := uint32(0)
	take := func(i int) {
		s.blocks[i] = append(s.blocks[i], next)
		s.owner[next] = i
		next++
	}
	for i := 0; i < g.NumASes(); i++ {
		take(i)
		extra := len(g.Customers(i)) / 8
		if extra > 3 {
			extra = 3
		}
		for k := 0; k < extra; k++ {
			take(i)
		}
	}
	return s
}

// PrefixesOf returns the prefixes allocated to the AS at dense index i.
func (s *Space) PrefixesOf(i int) []netip.Prefix {
	out := make([]netip.Prefix, len(s.blocks[i]))
	for k, b := range s.blocks[i] {
		out[k] = netip.PrefixFrom(u32ToAddr(base+b*blockSize), blockBits)
	}
	return out
}

// ASOf maps an address to the dense index of the owning AS. The second
// return is false for addresses outside the allocation grid (including
// IXP segments).
func (s *Space) ASOf(ip netip.Addr) (int, bool) {
	if !ip.Is4() {
		return 0, false
	}
	v := addrToU32(ip)
	if v < base {
		return 0, false
	}
	blk := (v - base) / blockSize
	i, ok := s.owner[blk]
	return i, ok
}

// RouterAddr returns the address of the k-th router interface of the AS
// at dense index i, deterministically spread across the AS's blocks.
// Interface addresses start at offset 1 within a block.
func (s *Space) RouterAddr(i, k int) netip.Addr {
	blks := s.blocks[i]
	blk := blks[k%len(blks)]
	off := uint32(1 + (k/len(blks))%(blockSize-2))
	return u32ToAddr(base + blk*blockSize + off)
}

// HostAddr returns the address of the k-th end host in the AS at dense
// index i (drawn from the top half of the AS's first block, so host and
// router addresses do not collide for small k).
func (s *Space) HostAddr(i, k int) netip.Addr {
	blk := s.blocks[i][0]
	off := uint32(blockSize/2 + k%(blockSize/2-1))
	return u32ToAddr(base + blk*blockSize + off)
}

// IXPAddr returns the k-th address of the IXP segment range: a valid,
// responsive router address that maps to no AS.
func IXPAddr(k int) netip.Addr {
	return u32ToAddr(ixpBase + uint32(k)%(1<<20))
}

// IsIXP reports whether the address lies in the IXP segment range.
func IsIXP(ip netip.Addr) bool {
	if !ip.Is4() {
		return false
	}
	v := addrToU32(ip)
	return v >= ixpBase && v < ixpBase+(1<<20)
}

func u32ToAddr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

func addrToU32(ip netip.Addr) uint32 {
	b := ip.As4()
	return binary.BigEndian.Uint32(b[:])
}

// Mapper resolves addresses to AS indices, possibly with errors. It is
// the interface the measurement pipeline consumes, so tests can swap a
// perfect mapper for a noisy one.
type Mapper interface {
	// Map returns the dense AS index for the address; ok is false when
	// the address cannot be mapped (IXP segments, unallocated space).
	Map(ip netip.Addr) (idx int, ok bool)
}

// PerfectMapper maps through the allocation with no errors.
type PerfectMapper struct{ Space *Space }

// Map implements Mapper.
func (m PerfectMapper) Map(ip netip.Addr) (int, bool) { return m.Space.ASOf(ip) }

// NoisyMapper wraps a Space with a deterministic per-block error model:
// a fraction of blocks are mis-attributed to a different AS (stale
// registry data), so every address in an affected block maps wrongly,
// which is how real IP-to-AS errors behave.
type NoisyMapper struct {
	space *Space
	wrong map[uint32]int // block -> wrong AS index
}

// NewNoisyMapper builds a mapper where errRate of blocks map to a wrong,
// randomly chosen AS. Deterministic for a seed.
func NewNoisyMapper(space *Space, errRate float64, seed uint64) (*NoisyMapper, error) {
	if errRate < 0 || errRate > 1 {
		return nil, fmt.Errorf("addr: error rate %v out of [0,1]", errRate)
	}
	rng := stats.NewRNG(seed ^ 0xadd2e55e5)
	m := &NoisyMapper{space: space, wrong: make(map[uint32]int)}
	n := space.g.NumASes()
	// Blocks are allocated sequentially from 0; iterate in order so the
	// error assignment is deterministic (map iteration order is not).
	for blk := uint32(0); blk < uint32(len(space.owner)); blk++ {
		if !rng.Bool(errRate) {
			continue
		}
		w := rng.Intn(n)
		if w == space.owner[blk] {
			w = (w + 1) % n
		}
		m.wrong[blk] = w
	}
	return m, nil
}

// Map implements Mapper.
func (m *NoisyMapper) Map(ip netip.Addr) (int, bool) {
	if !ip.Is4() {
		return 0, false
	}
	v := addrToU32(ip)
	if v < base {
		return 0, false
	}
	blk := (v - base) / blockSize
	if w, bad := m.wrong[blk]; bad {
		return w, true
	}
	i, ok := m.space.owner[blk]
	return i, ok
}

// NumErrBlocks returns how many blocks are mis-attributed (for tests).
func (m *NoisyMapper) NumErrBlocks() int { return len(m.wrong) }
