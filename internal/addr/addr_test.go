package addr

import (
	"net/netip"
	"testing"
	"testing/quick"

	"spooftrack/internal/topo"
)

func graphForTest(t testing.TB, n int) *topo.Graph {
	t.Helper()
	p := topo.DefaultGenParams(3)
	p.NumASes = n
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllocateCoversEveryAS(t *testing.T) {
	g := graphForTest(t, 300)
	s := Allocate(g)
	for i := 0; i < g.NumASes(); i++ {
		ps := s.PrefixesOf(i)
		if len(ps) == 0 {
			t.Fatalf("AS%d has no prefixes", g.ASN(i))
		}
		for _, p := range ps {
			if p.Bits() != blockBits {
				t.Fatalf("prefix %v has wrong length", p)
			}
		}
	}
}

func TestAllocationDisjoint(t *testing.T) {
	g := graphForTest(t, 300)
	s := Allocate(g)
	seen := map[netip.Prefix]int{}
	for i := 0; i < g.NumASes(); i++ {
		for _, p := range s.PrefixesOf(i) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("prefix %v allocated to both AS%d and AS%d", p, g.ASN(prev), g.ASN(i))
			}
			seen[p] = i
		}
	}
}

func TestASOfRoundTrip(t *testing.T) {
	g := graphForTest(t, 300)
	s := Allocate(g)
	for i := 0; i < g.NumASes(); i += 7 {
		for k := 0; k < 5; k++ {
			ip := s.RouterAddr(i, k)
			got, ok := s.ASOf(ip)
			if !ok || got != i {
				t.Fatalf("RouterAddr(%d,%d)=%v maps to %d ok=%v", i, k, ip, got, ok)
			}
			host := s.HostAddr(i, k)
			got, ok = s.ASOf(host)
			if !ok || got != i {
				t.Fatalf("HostAddr(%d,%d)=%v maps to %d ok=%v", i, k, host, got, ok)
			}
		}
	}
}

func TestRouterAndHostAddrsDistinct(t *testing.T) {
	g := graphForTest(t, 100)
	s := Allocate(g)
	seen := map[netip.Addr]bool{}
	for k := 0; k < 20; k++ {
		r := s.RouterAddr(5, k)
		if seen[r] {
			t.Fatalf("router address %v repeats within first 20", r)
		}
		seen[r] = true
	}
	for k := 0; k < 20; k++ {
		h := s.HostAddr(5, k)
		if seen[h] {
			t.Fatalf("host address %v collides with router space", h)
		}
	}
}

func TestASOfUnknownAddresses(t *testing.T) {
	g := graphForTest(t, 100)
	s := Allocate(g)
	for _, ip := range []netip.Addr{
		netip.MustParseAddr("8.8.8.8"),         // below grid
		netip.MustParseAddr("2001:db8::1"),     // v6
		IXPAddr(3),                             // IXP segment
		netip.MustParseAddr("255.255.255.255"), // far beyond grid
	} {
		if _, ok := s.ASOf(ip); ok {
			t.Errorf("address %v should not map to an AS", ip)
		}
	}
}

func TestIXPAddrs(t *testing.T) {
	if !IsIXP(IXPAddr(0)) || !IsIXP(IXPAddr(999999)) {
		t.Fatal("IXP addresses not recognized")
	}
	if IsIXP(netip.MustParseAddr("16.0.0.1")) {
		t.Fatal("grid address misidentified as IXP")
	}
	if IsIXP(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("v6 address misidentified as IXP")
	}
}

func TestTransitGetsMoreSpace(t *testing.T) {
	g := graphForTest(t, 500)
	s := Allocate(g)
	// Find the AS with the most customers; it should hold more blocks
	// than a stub.
	big, bigCust := 0, -1
	stub := -1
	for i := 0; i < g.NumASes(); i++ {
		c := len(g.Customers(i))
		if c > bigCust {
			big, bigCust = i, c
		}
		if c == 0 && stub == -1 {
			stub = i
		}
	}
	if len(s.PrefixesOf(big)) <= len(s.PrefixesOf(stub)) {
		t.Fatalf("transit AS%d has %d blocks, stub AS%d has %d",
			g.ASN(big), len(s.PrefixesOf(big)), g.ASN(stub), len(s.PrefixesOf(stub)))
	}
}

func TestNoisyMapperErrRate(t *testing.T) {
	g := graphForTest(t, 400)
	s := Allocate(g)
	m, err := NewNoisyMapper(s, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.owner)
	frac := float64(m.NumErrBlocks()) / float64(total)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("error fraction %.3f, want ~0.1", frac)
	}
	// Mis-attributed blocks must map to a different AS, not fail.
	errors := 0
	for i := 0; i < g.NumASes(); i++ {
		ip := s.RouterAddr(i, 0)
		got, ok := m.Map(ip)
		if !ok {
			t.Fatalf("noisy mapper failed on allocated address %v", ip)
		}
		if got != i {
			errors++
		}
	}
	if errors == 0 {
		t.Fatal("no mapping errors observed at 10% block error rate")
	}
}

func TestNoisyMapperZeroRateIsPerfect(t *testing.T) {
	g := graphForTest(t, 200)
	s := Allocate(g)
	m, err := NewNoisyMapper(s, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumASes(); i++ {
		if got, ok := m.Map(s.RouterAddr(i, 1)); !ok || got != i {
			t.Fatalf("zero-noise mapper wrong for AS%d", g.ASN(i))
		}
	}
}

func TestNoisyMapperDeterministic(t *testing.T) {
	g := graphForTest(t, 200)
	s := Allocate(g)
	m1, _ := NewNoisyMapper(s, 0.2, 42)
	m2, _ := NewNoisyMapper(s, 0.2, 42)
	for i := 0; i < g.NumASes(); i++ {
		ip := s.RouterAddr(i, 0)
		a, aok := m1.Map(ip)
		b, bok := m2.Map(ip)
		if a != b || aok != bok {
			t.Fatalf("same-seed mappers disagree on %v", ip)
		}
	}
}

func TestNoisyMapperRejectsBadRate(t *testing.T) {
	g := graphForTest(t, 100)
	s := Allocate(g)
	if _, err := NewNoisyMapper(s, -0.1, 1); err == nil {
		t.Fatal("expected error for negative rate")
	}
	if _, err := NewNoisyMapper(s, 1.5, 1); err == nil {
		t.Fatal("expected error for rate > 1")
	}
}

func TestPerfectMapper(t *testing.T) {
	g := graphForTest(t, 100)
	s := Allocate(g)
	m := PerfectMapper{Space: s}
	if got, ok := m.Map(s.RouterAddr(3, 0)); !ok || got != 3 {
		t.Fatal("perfect mapper wrong")
	}
	if _, ok := m.Map(IXPAddr(1)); ok {
		t.Fatal("perfect mapper should not map IXP addresses")
	}
}

func TestAddrConversionRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return addrToU32(u32ToAddr(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
