package measure

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"spooftrack/internal/mrt"
	"spooftrack/internal/topo"
)

// AnnouncedPrefix is the experiment prefix as it appears in collector
// feeds (the /24 containing TargetAddr).
var AnnouncedPrefix = netip.PrefixFrom(netip.MustParseAddr("198.51.100.0"), 24)

// feedNextHop is the next-hop placeholder written into simulated feed
// records; collectors in the simulation do not model next-hop IPs.
var feedNextHop = netip.MustParseAddr("203.0.113.1")

// ExportMRT serializes the observation's collector paths as an MRT
// BGP4MP stream, one UPDATE per collector, in ascending collector order
// (deterministic output). This is the wire format RouteViews and RIS
// publish, so downstream tooling can consume simulated feeds directly.
func ExportMRT(w io.Writer, obs Observation, g *topo.Graph, timestamp uint32) error {
	collectors := make([]int, 0, len(obs.BGPPaths))
	for c := range obs.BGPPaths {
		collectors = append(collectors, c)
	}
	sort.Ints(collectors)
	for _, c := range collectors {
		u := &mrt.Update{
			PeerAS:    g.ASN(c),
			LocalAS:   g.ASN(c),
			Timestamp: timestamp,
			Path:      obs.BGPPaths[c],
			NextHop:   feedNextHop,
			Prefix:    AnnouncedPrefix,
		}
		if err := mrt.WriteUpdate(w, u); err != nil {
			return fmt.Errorf("measure: exporting feed for AS%d: %w", g.ASN(c), err)
		}
	}
	return nil
}

// ImportMRT parses an MRT stream back into the per-collector path map
// Infer consumes. Records for other prefixes are skipped; records from
// peers not in the topology are rejected.
func ImportMRT(r io.Reader, g *topo.Graph) (map[int][]topo.ASN, error) {
	updates, err := mrt.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]topo.ASN, len(updates))
	for _, u := range updates {
		if u.Prefix != AnnouncedPrefix {
			continue
		}
		idx, ok := g.Index(u.PeerAS)
		if !ok {
			return nil, fmt.Errorf("measure: feed peer AS%d not in topology", u.PeerAS)
		}
		out[idx] = u.Path
	}
	return out, nil
}

// RoundTripMRT pushes the observation's BGP paths through the MRT wire
// format and back, replacing them in place. Enabled by the world's
// WireFeeds option so campaigns exercise the real encode/decode path.
func RoundTripMRT(obs *Observation, g *topo.Graph, timestamp uint32) error {
	var buf bytes.Buffer
	if err := ExportMRT(&buf, *obs, g, timestamp); err != nil {
		return err
	}
	paths, err := ImportMRT(&buf, g)
	if err != nil {
		return err
	}
	if len(paths) != len(obs.BGPPaths) {
		return fmt.Errorf("measure: feed round-trip lost paths: %d -> %d", len(obs.BGPPaths), len(paths))
	}
	obs.BGPPaths = paths
	return nil
}
