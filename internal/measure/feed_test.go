package measure

import (
	"bytes"
	"testing"

	"spooftrack/internal/peering"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

func TestMRTFeedRoundTrip(t *testing.T) {
	w := newMeasureWorld(t, 55, 800, 100, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	obs := Collect(out, w.vantages, w.space, DefaultNoise(), rng)
	if len(obs.BGPPaths) == 0 {
		t.Fatal("no BGP paths collected")
	}

	var buf bytes.Buffer
	if err := ExportMRT(&buf, obs, w.g, 42); err != nil {
		t.Fatal(err)
	}
	paths, err := ImportMRT(&buf, w.g)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(obs.BGPPaths) {
		t.Fatalf("imported %d paths, exported %d", len(paths), len(obs.BGPPaths))
	}
	for c, want := range obs.BGPPaths {
		got := paths[c]
		if len(got) != len(want) {
			t.Fatalf("collector %d path %v, want %v", c, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("collector %d path %v, want %v", c, got, want)
			}
		}
	}
}

func TestRoundTripMRTPreservesInference(t *testing.T) {
	w := newMeasureWorld(t, 56, 800, 100, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	obs1 := Collect(out, w.vantages, w.space, DefaultNoise(), rng)
	obs2 := Observation{BGPPaths: map[int][]topo.ASN{}, Traceroutes: obs1.Traceroutes}
	for c, p := range obs1.BGPPaths {
		obs2.BGPPaths[c] = p
	}
	if err := RoundTripMRT(&obs2, w.g, 1); err != nil {
		t.Fatal(err)
	}
	m1 := Infer(obs1, w.input)
	m2 := Infer(obs2, w.input)
	for i := range m1.Catchment {
		if m1.Catchment[i] != m2.Catchment[i] {
			t.Fatalf("wire round-trip changed inference for AS index %d", i)
		}
	}
}

func TestExportMRTDeterministic(t *testing.T) {
	w := newMeasureWorld(t, 57, 600, 50, 50)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	obs := Collect(out, w.vantages, w.space, NoiseParams{RoutersPerAS: 1}, stats.NewRNG(1))
	var b1, b2 bytes.Buffer
	if err := ExportMRT(&b1, obs, w.g, 7); err != nil {
		t.Fatal(err)
	}
	if err := ExportMRT(&b2, obs, w.g, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("MRT export not deterministic")
	}
}

func TestImportMRTRejectsUnknownPeer(t *testing.T) {
	w := newMeasureWorld(t, 58, 400, 10, 10)
	obs := Observation{BGPPaths: map[int][]topo.ASN{
		5: {w.g.ASN(5), peering.PEERINGASN},
	}}
	var buf bytes.Buffer
	if err := ExportMRT(&buf, obs, w.g, 1); err != nil {
		t.Fatal(err)
	}
	// A graph that does not contain the peer.
	b := topo.NewBuilder()
	if err := b.AddP2C(1000001, 1000002); err != nil {
		t.Fatal(err)
	}
	other := b.Freeze()
	if _, err := ImportMRT(&buf, other); err == nil {
		t.Fatal("unknown peer accepted")
	}
}
