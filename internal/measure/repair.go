package measure

import (
	"net/netip"
	"strings"
)

// RepairUnresponsive implements the first repair stage of §IV-b: for each
// run of unresponsive hops surrounded by responsive hops (a ... b), look
// across all other traceroutes for responsive hop sequences observed
// between a and b; if exactly one distinct sequence exists, substitute
// it. Returns repaired copies; inputs are not modified.
func RepairUnresponsive(trs []Traceroute) []Traceroute {
	idx := buildGapIndex(trs)
	out := make([]Traceroute, len(trs))
	for i, tr := range trs {
		out[i] = repairOne(tr, idx)
	}
	return out
}

// gapKey identifies a pair of responsive hop addresses that surround a
// gap.
type gapKey struct{ a, b netip.Addr }

// gapIndex maps a surrounding pair to the set of distinct responsive
// sequences observed between them. Sequences are encoded as strings for
// set semantics; "" marks a conflicting (non-unique) entry.
type gapIndex map[gapKey]map[string][]Hop

func buildGapIndex(trs []Traceroute) gapIndex {
	idx := make(gapIndex)
	for _, tr := range trs {
		hops := tr.Hops
		for i := 0; i < len(hops); i++ {
			if !hops[i].Responsive {
				continue
			}
			// Extend a window of fully responsive hops after i.
			for j := i + 1; j < len(hops) && j-i <= 4; j++ {
				if !hops[j].Responsive {
					break
				}
				if j-i >= 2 { // at least one intermediate hop
					key := gapKey{hops[i].Addr, hops[j].Addr}
					seq := hops[i+1 : j]
					enc := encodeHops(seq)
					m, ok := idx[key]
					if !ok {
						m = make(map[string][]Hop)
						idx[key] = m
					}
					if _, dup := m[enc]; !dup {
						m[enc] = append([]Hop(nil), seq...)
					}
				}
			}
		}
	}
	return idx
}

func encodeHops(hops []Hop) string {
	var sb strings.Builder
	for _, h := range hops {
		sb.WriteString(h.Addr.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

func repairOne(tr Traceroute, idx gapIndex) Traceroute {
	hops := tr.Hops
	var out []Hop
	i := 0
	for i < len(hops) {
		h := hops[i]
		if h.Responsive {
			out = append(out, h)
			i++
			continue
		}
		// Start of an unresponsive run [i, j).
		j := i
		for j < len(hops) && !hops[j].Responsive {
			j++
		}
		// Surrounded by responsive hops?
		if len(out) > 0 && j < len(hops) {
			key := gapKey{out[len(out)-1].Addr, hops[j].Addr}
			if m, ok := idx[key]; ok && len(m) == 1 {
				for _, seq := range m {
					out = append(out, seq...)
				}
				i = j
				continue
			}
		}
		// No unique repair: keep the unresponsive hops as-is.
		out = append(out, hops[i:j]...)
		i = j
	}
	repaired := tr
	repaired.Hops = out
	return repaired
}
