package measure

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

func TestActiveProbeExactForResponders(t *testing.T) {
	w := newMeasureWorld(t, 61, 800, 50, 100)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ActiveProbeCatchments(out, w.space, ActiveProbeParams{PrReply: 1, PrRateLimited: 0}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Full response rate: every routed AS observed, all exact.
	for i := 0; i < w.g.NumASes(); i++ {
		truth := out.CatchmentOf(i)
		if truth == bgp.NoLink {
			if m.Observed[i] {
				t.Fatalf("unrouted AS observed")
			}
			continue
		}
		if !m.Observed[i] || m.Catchment[i] != truth {
			t.Fatalf("AS index %d: measured %d, truth %d", i, m.Catchment[i], truth)
		}
	}
}

func TestActiveProbeCoverage(t *testing.T) {
	w := newMeasureWorld(t, 62, 800, 50, 100)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultActiveProbeParams()
	m, err := ActiveProbeCatchments(out, w.space, p, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.ObservedCount()) / float64(out.NumRouted())
	want := p.PrReply * (1 - p.PrRateLimited)
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("coverage %.3f, want ~%.3f", frac, want)
	}
	// All observations exact (replies follow the data plane).
	for i := range m.Catchment {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			t.Fatal("active probing produced a wrong catchment")
		}
	}
}

func TestActiveProbeValidation(t *testing.T) {
	w := newMeasureWorld(t, 63, 400, 10, 10)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ActiveProbeCatchments(out, w.space, ActiveProbeParams{PrReply: 1.5}, stats.NewRNG(1)); err == nil {
		t.Fatal("invalid probability accepted")
	}
}

func TestMergeMeasurements(t *testing.T) {
	mk := func(catchment []bgp.LinkID, observed []bool) *CatchmentMeasurement {
		return &CatchmentMeasurement{Catchment: catchment, Observed: observed}
	}
	primary := mk([]bgp.LinkID{0, bgp.NoLink, 2}, []bool{true, false, true})
	secondary := mk([]bgp.LinkID{1, 1, 1}, []bool{true, true, true})
	merged := MergeMeasurements(primary, secondary)
	// AS 0: both observed, primary wins, conflict counted.
	if merged.Catchment[0] != 0 {
		t.Fatal("primary assignment lost")
	}
	// AS 1: only secondary observed.
	if !merged.Observed[1] || merged.Catchment[1] != 1 {
		t.Fatal("secondary fill-in lost")
	}
	// Conflicts: AS 0 (0 vs 1) and AS 2 (2 vs 1).
	if merged.MultiCatchment != 2 {
		t.Fatalf("MultiCatchment = %d, want 2", merged.MultiCatchment)
	}
}

func TestMergeImprovesCoverage(t *testing.T) {
	w := newMeasureWorld(t, 64, 800, 50, 150)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	obs := Collect(out, w.vantages, w.space, DefaultNoise(), rng)
	inferred := Infer(obs, w.input)
	active, err := ActiveProbeCatchments(out, w.space, DefaultActiveProbeParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeMeasurements(inferred, active)
	if merged.ObservedCount() <= inferred.ObservedCount() {
		t.Fatalf("merging active probing did not improve coverage: %d vs %d",
			merged.ObservedCount(), inferred.ObservedCount())
	}
}

func TestCollectMultipleRounds(t *testing.T) {
	w := newMeasureWorld(t, 65, 600, 20, 50)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseParams{RoutersPerAS: 2, Rounds: 3}
	obs := Collect(out, w.vantages, w.space, noise, stats.NewRNG(4))
	// With no probe loss, exactly 3 traceroutes per probe with a route.
	routedProbes := 0
	for _, p := range w.vantages.Probes {
		if out.HasRoute(p) {
			routedProbes++
		}
	}
	if len(obs.Traceroutes) != 3*routedProbes {
		t.Fatalf("got %d traceroutes for %d routed probes x 3 rounds", len(obs.Traceroutes), routedProbes)
	}
}
