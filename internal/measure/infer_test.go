package measure

import (
	"testing"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/peering"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// measureWorld bundles everything an inference test needs.
type measureWorld struct {
	g        *topo.Graph
	platform *peering.Platform
	space    *addr.Space
	vantages VantageSet
	input    InferInput
}

func newMeasureWorld(t testing.TB, seed uint64, numASes, nCollectors, nProbes int) *measureWorld {
	t.Helper()
	p := topo.DefaultGenParams(seed)
	p.NumASes = numASes
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		t.Fatal(err)
	}
	space := addr.Allocate(g)
	v := ChooseVantages(g, seed, nCollectors, nProbes)
	linkOf := func(prov int) (bgp.LinkID, bool) {
		return plat.LinkByProvider(g.ASN(prov))
	}
	return &measureWorld{
		g:        g,
		platform: plat,
		space:    space,
		vantages: v,
		input: InferInput{
			Graph:     g,
			Mapper:    addr.PerfectMapper{Space: space},
			OriginASN: peering.PEERINGASN,
			LinkOf:    linkOf,
		},
	}
}

func anycastAll(n int) bgp.Config {
	anns := make([]bgp.Announcement, n)
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	return bgp.Config{Anns: anns}
}

func TestChooseVantagesDeterministicAndSized(t *testing.T) {
	g, err := topo.Generate(topo.DefaultGenParams(5))
	if err != nil {
		t.Fatal(err)
	}
	v1 := ChooseVantages(g, 9, 100, 400)
	v2 := ChooseVantages(g, 9, 100, 400)
	if len(v1.Collectors) != 100 || len(v1.Probes) != 400 {
		t.Fatalf("sizes %d/%d, want 100/400", len(v1.Collectors), len(v1.Probes))
	}
	for i := range v1.Collectors {
		if v1.Collectors[i] != v2.Collectors[i] {
			t.Fatal("collectors differ across same-seed calls")
		}
	}
	for i := range v1.Probes {
		if v1.Probes[i] != v2.Probes[i] {
			t.Fatal("probes differ across same-seed calls")
		}
	}
}

func TestChooseVantagesCollectorBias(t *testing.T) {
	g, err := topo.Generate(topo.DefaultGenParams(5))
	if err != nil {
		t.Fatal(err)
	}
	v := ChooseVantages(g, 9, 100, 100)
	transit := 0
	for _, c := range v.Collectors {
		if len(g.Customers(c)) > 0 {
			transit++
		}
	}
	if transit < 50 {
		t.Fatalf("only %d of 100 collectors are transit; want bias toward transit", transit)
	}
}

func TestSynthesizeTracerouteClean(t *testing.T) {
	w := newMeasureWorld(t, 31, 600, 50, 100)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	noise := NoiseParams{RoutersPerAS: 1} // no noise at all
	probe := w.vantages.Probes[0]
	tr, ok := SynthesizeTraceroute(out, w.space, probe, noise, rng)
	if !ok || !tr.Reached {
		t.Fatal("clean traceroute failed")
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Addr != TargetAddr {
		t.Fatalf("last hop %v, want target", last.Addr)
	}
	// Every hop except the target maps to an AS on the data path.
	dp := out.DataPath(probe)
	onPath := map[int]bool{}
	for _, idx := range dp {
		onPath[idx] = true
	}
	for _, h := range tr.Hops[:len(tr.Hops)-1] {
		as, ok := w.space.ASOf(h.Addr)
		if !ok || !onPath[as] {
			t.Fatalf("hop %v maps to AS off the data path", h.Addr)
		}
	}
}

func TestSynthesizeTracerouteNoiseInjects(t *testing.T) {
	w := newMeasureWorld(t, 32, 600, 50, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	noise := NoiseParams{PrUnresponsive: 0.3, PrIXPHop: 0.3, RoutersPerAS: 3}
	unresp, ixp := 0, 0
	for _, probe := range w.vantages.Probes {
		tr, ok := SynthesizeTraceroute(out, w.space, probe, noise, rng)
		if !ok {
			continue
		}
		for _, h := range tr.Hops {
			if !h.Responsive {
				unresp++
			} else if addr.IsIXP(h.Addr) {
				ixp++
			}
		}
	}
	if unresp == 0 || ixp == 0 {
		t.Fatalf("noise not injected: %d unresponsive, %d IXP hops", unresp, ixp)
	}
}

func TestSynthesizeTracerouteProbeFail(t *testing.T) {
	w := newMeasureWorld(t, 33, 600, 10, 100)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	noise := NoiseParams{PrProbeFail: 1.0}
	if _, ok := SynthesizeTraceroute(out, w.space, w.vantages.Probes[0], noise, rng); ok {
		t.Fatal("traceroute succeeded with PrProbeFail=1")
	}
}

func TestASLevelPathCleanMapping(t *testing.T) {
	w := newMeasureWorld(t, 34, 600, 50, 100)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	noise := NoiseParams{RoutersPerAS: 2}
	probe := w.vantages.Probes[1]
	tr, _ := SynthesizeTraceroute(out, w.space, probe, noise, rng)
	seqIdx := newASSeqIndex(nil, peering.PEERINGASN)
	got := ASLevelPath(tr, w.g, w.input.Mapper, seqIdx)
	want := out.DataPath(probe)
	if len(got) != len(want) {
		t.Fatalf("AS path %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AS path %v, want %v", got, want)
		}
	}
}

func TestASLevelPathStage2SameAS(t *testing.T) {
	w := newMeasureWorld(t, 35, 400, 10, 10)
	// Hand-build: AS x router, dead hop, another AS x router, AS y router.
	x, y := 10, 20
	tr := Traceroute{Hops: []Hop{
		{Addr: w.space.RouterAddr(x, 0), Responsive: true},
		{},
		{Addr: w.space.RouterAddr(x, 1), Responsive: true},
		{Addr: w.space.RouterAddr(y, 0), Responsive: true},
	}}
	got := ASLevelPath(tr, w.g, w.input.Mapper, newASSeqIndex(nil, peering.PEERINGASN))
	if len(got) != 2 || got[0] != x || got[1] != y {
		t.Fatalf("stage-2 repair: got %v, want [%d %d]", got, x, y)
	}
}

func TestASLevelPathStage3BGPBridge(t *testing.T) {
	w := newMeasureWorld(t, 36, 400, 10, 10)
	x, mid, y := 10, 15, 20
	// BGP feed shows x mid y ... (terminated by origin), giving a unique
	// bridge for the unmapped gap between x and y.
	paths := map[int][]topo.ASN{
		0: {w.g.ASN(x), w.g.ASN(mid), w.g.ASN(y), peering.PEERINGASN},
	}
	seqIdx := newASSeqIndex(paths, peering.PEERINGASN)
	tr := Traceroute{Hops: []Hop{
		{Addr: w.space.RouterAddr(x, 0), Responsive: true},
		{},
		{Addr: w.space.RouterAddr(y, 0), Responsive: true},
	}}
	got := ASLevelPath(tr, w.g, w.input.Mapper, seqIdx)
	if len(got) != 3 || got[0] != x || got[1] != mid || got[2] != y {
		t.Fatalf("stage-3 bridge: got %v, want [%d %d %d]", got, x, mid, y)
	}
}

func TestASLevelPathDropsUnbridgeable(t *testing.T) {
	w := newMeasureWorld(t, 37, 400, 10, 10)
	x, y := 10, 20
	tr := Traceroute{Hops: []Hop{
		{Addr: w.space.RouterAddr(x, 0), Responsive: true},
		{},
		{Addr: w.space.RouterAddr(y, 0), Responsive: true},
	}}
	got := ASLevelPath(tr, w.g, w.input.Mapper, newASSeqIndex(nil, peering.PEERINGASN))
	if len(got) != 2 || got[0] != x || got[1] != y {
		t.Fatalf("unbridgeable gap: got %v, want [%d %d]", got, x, y)
	}
}

func TestASLevelPathIXPHopsDropped(t *testing.T) {
	w := newMeasureWorld(t, 38, 400, 10, 10)
	x, y := 10, 20
	tr := Traceroute{Hops: []Hop{
		{Addr: w.space.RouterAddr(x, 0), Responsive: true},
		{Addr: addr.IXPAddr(5), Responsive: true},
		{Addr: w.space.RouterAddr(y, 0), Responsive: true},
	}}
	got := ASLevelPath(tr, w.g, w.input.Mapper, newASSeqIndex(nil, peering.PEERINGASN))
	if len(got) != 2 || got[0] != x || got[1] != y {
		t.Fatalf("IXP hop handling: got %v, want [%d %d]", got, x, y)
	}
}

func TestInferMatchesTruthCleanWorld(t *testing.T) {
	w := newMeasureWorld(t, 39, 1000, 150, 400)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	obs := Collect(out, w.vantages, w.space, NoiseParams{RoutersPerAS: 2}, rng)
	m := Infer(obs, w.input)
	if m.ObservedCount() == 0 {
		t.Fatal("nothing observed")
	}
	wrong := 0
	for i := 0; i < w.g.NumASes(); i++ {
		if !m.Observed[i] {
			continue
		}
		if m.Catchment[i] != out.CatchmentOf(i) {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(m.ObservedCount()); frac > 0.001 {
		t.Fatalf("clean-world inference wrong for %.2f%% of observed ASes", frac*100)
	}
	if m.MultiCatchment != 0 {
		t.Fatalf("clean world produced %d multi-catchment ASes", m.MultiCatchment)
	}
}

func TestInferAccurateUnderNoise(t *testing.T) {
	w := newMeasureWorld(t, 40, 1000, 150, 400)
	noisy, err := addr.NewNoisyMapper(w.space, 0.02, 40)
	if err != nil {
		t.Fatal(err)
	}
	in := w.input
	in.Mapper = noisy
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	obs := Collect(out, w.vantages, w.space, DefaultNoise(), rng)
	m := Infer(obs, in)
	if m.ObservedCount() < 100 {
		t.Fatalf("only %d ASes observed", m.ObservedCount())
	}
	wrong := 0
	for i := 0; i < w.g.NumASes(); i++ {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(m.ObservedCount()); frac > 0.05 {
		t.Fatalf("noisy inference wrong for %.2f%% of observed ASes, want <5%%", frac*100)
	}
}

func TestInferBGPPriorityOverTraceroute(t *testing.T) {
	w := newMeasureWorld(t, 41, 400, 10, 10)
	// Build a synthetic observation with conflicting evidence for AS x:
	// BGP says link of provider A; a traceroute says link of provider B.
	muxes := w.platform.Muxes()
	provA, provB := muxes[0].Provider, muxes[1].Provider
	x := 30
	obs := Observation{
		BGPPaths: map[int][]topo.ASN{
			x: {w.g.ASN(x), w.g.ASN(provA), peering.PEERINGASN},
		},
		Traceroutes: []Traceroute{{
			ProbeAS: x,
			Reached: true,
			Hops: []Hop{
				{Addr: w.space.RouterAddr(x, 0), Responsive: true},
				{Addr: w.space.RouterAddr(provB, 0), Responsive: true},
				{Addr: TargetAddr, Responsive: true},
			},
		}},
	}
	m := Infer(obs, w.input)
	wantLink, _ := w.platform.LinkByProvider(w.g.ASN(provA))
	if m.Catchment[x] != wantLink {
		t.Fatalf("catchment %d, want BGP-derived %d", m.Catchment[x], wantLink)
	}
	if m.MultiCatchment != 1 {
		t.Fatalf("MultiCatchment = %d, want 1", m.MultiCatchment)
	}
}

func TestInferMajorityVote(t *testing.T) {
	w := newMeasureWorld(t, 42, 400, 10, 10)
	muxes := w.platform.Muxes()
	provA, provB := muxes[0].Provider, muxes[1].Provider
	x := 30
	mk := func(prov int) Traceroute {
		return Traceroute{
			ProbeAS: x, Reached: true,
			Hops: []Hop{
				{Addr: w.space.RouterAddr(x, 0), Responsive: true},
				{Addr: w.space.RouterAddr(prov, 0), Responsive: true},
				{Addr: TargetAddr, Responsive: true},
			},
		}
	}
	obs := Observation{
		BGPPaths:    map[int][]topo.ASN{},
		Traceroutes: []Traceroute{mk(provA), mk(provB), mk(provB)},
	}
	m := Infer(obs, w.input)
	wantLink, _ := w.platform.LinkByProvider(w.g.ASN(provB))
	if m.Catchment[x] != wantLink {
		t.Fatalf("catchment %d, want majority %d", m.Catchment[x], wantLink)
	}
}

func TestImputeFillsMissing(t *testing.T) {
	mk := func(catchments map[int]bgp.LinkID, n int) *CatchmentMeasurement {
		m := &CatchmentMeasurement{
			Catchment: make([]bgp.LinkID, n),
			Observed:  make([]bool, n),
		}
		for i := range m.Catchment {
			m.Catchment[i] = bgp.NoLink
		}
		for i, l := range catchments {
			m.Catchment[i] = l
			m.Observed[i] = true
		}
		return m
	}
	const n = 5
	// Sources 0,1,2 observed in baseline. Sources 0 and 1 always share a
	// catchment; in config 2, source 1 is missing and must inherit
	// source 0's catchment (its smax).
	ms := []*CatchmentMeasurement{
		mk(map[int]bgp.LinkID{0: 0, 1: 0, 2: 1}, n),
		mk(map[int]bgp.LinkID{0: 1, 1: 1, 2: 0}, n),
		mk(map[int]bgp.LinkID{0: 2, 2: 0}, n),
	}
	res := Impute(ms)
	if len(res.Sources) != 3 {
		t.Fatalf("sources = %v, want 3 baseline sources", res.Sources)
	}
	// Find index of source 1.
	k1 := -1
	for k, s := range res.Sources {
		if s == 1 {
			k1 = k
		}
	}
	if k1 == -1 {
		t.Fatal("source 1 missing")
	}
	if got := res.Catchments[2][k1]; got != 2 {
		t.Fatalf("imputed catchment %d, want 2 (from smax source 0)", got)
	}
	if res.Imputed != 1 {
		t.Fatalf("Imputed = %d, want 1", res.Imputed)
	}
}

func TestImputeEmpty(t *testing.T) {
	res := Impute(nil)
	if len(res.Sources) != 0 || res.Imputed != 0 {
		t.Fatal("empty imputation should be empty")
	}
}

func TestImputeNoMissingNoImputation(t *testing.T) {
	m := &CatchmentMeasurement{
		Catchment: []bgp.LinkID{0, 1, bgp.NoLink},
		Observed:  []bool{true, true, false},
	}
	res := Impute([]*CatchmentMeasurement{m})
	if res.Imputed != 0 {
		t.Fatalf("Imputed = %d, want 0", res.Imputed)
	}
	if len(res.Sources) != 2 {
		t.Fatalf("sources = %v, want 2", res.Sources)
	}
}

func TestObservedCount(t *testing.T) {
	m := &CatchmentMeasurement{Observed: []bool{true, false, true}}
	if m.ObservedCount() != 2 {
		t.Fatal("ObservedCount wrong")
	}
}
