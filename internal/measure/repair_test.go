package measure

import (
	"net/netip"
	"testing"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func resp(s string) Hop { return Hop{Addr: a(s), Responsive: true} }
func dead() Hop         { return Hop{} }

func TestRepairSubstitutesUniqueSequence(t *testing.T) {
	// Reference traceroute shows 1.1.1.1 -> 2.2.2.2 -> 3.3.3.3; the
	// broken one has a timeout where 2.2.2.2 should be.
	ref := Traceroute{Hops: []Hop{resp("1.1.1.1"), resp("2.2.2.2"), resp("3.3.3.3")}}
	broken := Traceroute{Hops: []Hop{resp("1.1.1.1"), dead(), resp("3.3.3.3")}}
	out := RepairUnresponsive([]Traceroute{ref, broken})
	got := out[1].Hops
	if len(got) != 3 || !got[1].Responsive || got[1].Addr != a("2.2.2.2") {
		t.Fatalf("repair failed: %v", out[1].debugString())
	}
	// Reference must be untouched.
	if len(out[0].Hops) != 3 || out[0].Hops[1].Addr != a("2.2.2.2") {
		t.Fatal("reference traceroute modified")
	}
}

func TestRepairSkipsConflictingSequences(t *testing.T) {
	// Two references disagree about what lies between 1.1.1.1 and
	// 3.3.3.3: no substitution may happen.
	ref1 := Traceroute{Hops: []Hop{resp("1.1.1.1"), resp("2.2.2.2"), resp("3.3.3.3")}}
	ref2 := Traceroute{Hops: []Hop{resp("1.1.1.1"), resp("9.9.9.9"), resp("3.3.3.3")}}
	broken := Traceroute{Hops: []Hop{resp("1.1.1.1"), dead(), resp("3.3.3.3")}}
	out := RepairUnresponsive([]Traceroute{ref1, ref2, broken})
	got := out[2].Hops
	if len(got) != 3 || got[1].Responsive {
		t.Fatalf("conflicting repair applied: %v", out[2].debugString())
	}
}

func TestRepairMultiHopGap(t *testing.T) {
	ref := Traceroute{Hops: []Hop{resp("1.1.1.1"), resp("2.2.2.2"), resp("4.4.4.4"), resp("3.3.3.3")}}
	broken := Traceroute{Hops: []Hop{resp("1.1.1.1"), dead(), dead(), resp("3.3.3.3")}}
	out := RepairUnresponsive([]Traceroute{ref, broken})
	got := out[1].Hops
	if len(got) != 4 || got[1].Addr != a("2.2.2.2") || got[2].Addr != a("4.4.4.4") {
		t.Fatalf("multi-hop repair failed: %v", out[1].debugString())
	}
}

func TestRepairLeavesEdgeGaps(t *testing.T) {
	// Gaps at the beginning or end have no surrounding pair; keep as-is.
	tr := Traceroute{Hops: []Hop{dead(), resp("1.1.1.1"), resp("2.2.2.2"), dead()}}
	out := RepairUnresponsive([]Traceroute{tr})
	got := out[0].Hops
	if len(got) != 4 || got[0].Responsive || got[3].Responsive {
		t.Fatalf("edge gaps modified: %v", out[0].debugString())
	}
}

func TestRepairNoReferenceKeepsGap(t *testing.T) {
	broken := Traceroute{Hops: []Hop{resp("1.1.1.1"), dead(), resp("3.3.3.3")}}
	out := RepairUnresponsive([]Traceroute{broken})
	if out[0].Hops[1].Responsive {
		t.Fatal("gap filled without any reference")
	}
}

func TestRepairPreservesMetadata(t *testing.T) {
	tr := Traceroute{ProbeAS: 42, Reached: true, Hops: []Hop{resp("1.1.1.1")}}
	out := RepairUnresponsive([]Traceroute{tr})
	if out[0].ProbeAS != 42 || !out[0].Reached {
		t.Fatal("metadata lost during repair")
	}
}
