package measure

import (
	"fmt"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// Verfploeter-style active catchment measurement (de Vries et al., IMC
// 2017; cited as [11] in §I): the origin sends probes *sourced from the
// anycast prefix* to a hitlist address in every AS; each reply routes
// back toward the prefix and arrives on the replying AS's catchment
// link. One probe per AS maps the whole catchment without any external
// vantage points.
//
// The paper could not use this on PEERING ("concerns about executing
// Internet-wide scans from the PEERING platform", §IV-b) and fell back
// to collectors + RIPE Atlas; the package implements both so their
// coverage and accuracy can be compared.

// ActiveProbeParams tunes the hitlist sweep.
type ActiveProbeParams struct {
	// PrReply is the probability that an AS's hitlist address answers
	// the ping (hitlists cover most but not all networks).
	PrReply float64
	// PrRateLimited is the probability a reply is lost to ICMP rate
	// limiting even when the host would answer.
	PrRateLimited float64
}

// DefaultActiveProbeParams reflects typical hitlist response rates.
func DefaultActiveProbeParams() ActiveProbeParams {
	return ActiveProbeParams{PrReply: 0.75, PrRateLimited: 0.05}
}

// ActiveProbeCatchments sweeps the hitlist under the given routing
// outcome and returns the measured catchments. Replies follow the data
// plane: the reply from AS a enters on a's true catchment link, so
// responding ASes are measured exactly; silent ASes stay unobserved.
func ActiveProbeCatchments(out *bgp.Outcome, space *addr.Space, p ActiveProbeParams, rng *stats.RNG) (*CatchmentMeasurement, error) {
	if p.PrReply < 0 || p.PrReply > 1 || p.PrRateLimited < 0 || p.PrRateLimited > 1 {
		return nil, fmt.Errorf("measure: active probe probabilities out of range: %+v", p)
	}
	g := out.Graph()
	m := &CatchmentMeasurement{
		Catchment: make([]bgp.LinkID, g.NumASes()),
		Observed:  make([]bool, g.NumASes()),
	}
	for i := range m.Catchment {
		m.Catchment[i] = bgp.NoLink
	}
	for i := 0; i < g.NumASes(); i++ {
		// The probe only elicits a usable reply if the AS routes to the
		// prefix at all (otherwise the reply has nowhere to go).
		link := out.CatchmentOf(i)
		if link == bgp.NoLink {
			continue
		}
		// The hitlist address must exist and answer.
		if _, ok := space.ASOf(space.HostAddr(i, 0)); !ok {
			continue
		}
		if !rng.Bool(p.PrReply) || rng.Bool(p.PrRateLimited) {
			continue
		}
		m.Catchment[i] = link
		m.Observed[i] = true
	}
	return m, nil
}

// MergeMeasurements combines two catchment measurements for the same
// configuration, preferring the primary's assignment where both observed
// an AS (and counting disagreements as multi-catchment conflicts). Use
// it to supplement feed+traceroute inference with an active sweep.
func MergeMeasurements(primary, secondary *CatchmentMeasurement) *CatchmentMeasurement {
	n := len(primary.Catchment)
	out := &CatchmentMeasurement{
		Catchment:      make([]bgp.LinkID, n),
		Observed:       make([]bool, n),
		MultiCatchment: primary.MultiCatchment,
	}
	copy(out.Catchment, primary.Catchment)
	copy(out.Observed, primary.Observed)
	for i := 0; i < n && i < len(secondary.Catchment); i++ {
		if !secondary.Observed[i] {
			continue
		}
		if !out.Observed[i] {
			out.Observed[i] = true
			out.Catchment[i] = secondary.Catchment[i]
			continue
		}
		if out.Catchment[i] != secondary.Catchment[i] {
			out.MultiCatchment++
		}
	}
	return out
}
