// Package measure implements the paper's measurement substrate and
// inference pipeline (§IV-b/c/d): BGP route collectors (standing in for
// RouteViews and RIPE RIS), RIPE-Atlas-style traceroute synthesis with
// realistic noise (unresponsive hops, IXP segments, IP-to-AS mapping
// errors), the hop-repair pipeline, catchment inference with
// BGP-over-traceroute priority and majority voting, and source-visibility
// imputation via most-similar sources (smax).
package measure

import (
	"sort"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// VantageSet is the fixed set of measurement vantage points used across
// a campaign: collector ASes whose selected AS-paths are visible on
// public feeds, and probe ASes that can issue traceroutes toward the
// announced prefix.
type VantageSet struct {
	// Collectors are dense indices of ASes peering with route
	// collectors.
	Collectors []int
	// Probes are dense indices of ASes hosting traceroute probes.
	Probes []int
}

// ChooseVantages selects a deterministic vantage set. Collectors are
// biased toward large transit networks (RouteViews/RIS peers are mostly
// transit and tier-1 ASes); probes are a mix of stub and transit networks
// (RIPE Atlas probes sit mainly in edge networks). An AS can host both.
func ChooseVantages(g *topo.Graph, seed uint64, nCollectors, nProbes int) VantageSet {
	rng := stats.NewRNG(seed ^ 0x7a9e5)

	// Rank ASes by customer count for the collector bias.
	byCone := make([]int, g.NumASes())
	for i := range byCone {
		byCone[i] = i
	}
	sort.Slice(byCone, func(a, b int) bool {
		ca, cb := len(g.Customers(byCone[a])), len(g.Customers(byCone[b]))
		if ca != cb {
			return ca > cb
		}
		return byCone[a] < byCone[b]
	})

	v := VantageSet{}
	// Collectors: top transit by customer degree for the first 60%, the
	// rest sampled uniformly.
	nTop := nCollectors * 6 / 10
	if nTop > len(byCone) {
		nTop = len(byCone)
	}
	used := make(map[int]bool)
	for _, i := range byCone[:nTop] {
		v.Collectors = append(v.Collectors, i)
		used[i] = true
	}
	for len(v.Collectors) < nCollectors && len(used) < g.NumASes() {
		i := rng.Intn(g.NumASes())
		if !used[i] {
			used[i] = true
			v.Collectors = append(v.Collectors, i)
		}
	}

	// Probes: RIPE Atlas probes sit overwhelmingly in networks run by
	// operators — multihomed edge networks and transit ASes — rather
	// than single-homed leaf stubs. 75% of probes go to ASes with at
	// least two upstream choices; the rest are uniform.
	var connected []int
	for i := 0; i < g.NumASes(); i++ {
		if len(g.Providers(i))+len(g.Peers(i)) >= 2 {
			connected = append(connected, i)
		}
	}
	usedP := make(map[int]bool)
	wantConnected := nProbes * 3 / 4
	for len(v.Probes) < wantConnected && len(usedP) < len(connected) {
		i := connected[rng.Intn(len(connected))]
		if !usedP[i] {
			usedP[i] = true
			v.Probes = append(v.Probes, i)
		}
	}
	for len(v.Probes) < nProbes && len(usedP) < g.NumASes() {
		i := rng.Intn(g.NumASes())
		if !usedP[i] {
			usedP[i] = true
			v.Probes = append(v.Probes, i)
		}
	}
	sort.Ints(v.Collectors)
	sort.Ints(v.Probes)
	return v
}
