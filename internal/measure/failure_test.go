// Failure injection: the inference pipeline must degrade gracefully
// when measurement modalities disappear or misbehave. The failure modes
// are driven by the shared fault scenario profiles (internal/fault)
// rather than ad-hoc fixtures, so the campaign chaos tests and these
// inference tests exercise the same fault schedules. The package is
// external (measure_test) because fault imports measure.
package measure_test

import (
	"reflect"
	"testing"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/fault"
	"spooftrack/internal/measure"
	"spooftrack/internal/peering"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// failureWorld bundles everything a degradation test needs.
type failureWorld struct {
	g        *topo.Graph
	platform *peering.Platform
	space    *addr.Space
	vantages measure.VantageSet
	input    measure.InferInput
}

func newFailureWorld(t testing.TB, seed uint64, numASes, nCollectors, nProbes int) *failureWorld {
	t.Helper()
	p := topo.DefaultGenParams(seed)
	p.NumASes = numASes
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		t.Fatal(err)
	}
	space := addr.Allocate(g)
	return &failureWorld{
		g:        g,
		platform: plat,
		space:    space,
		vantages: measure.ChooseVantages(g, seed, nCollectors, nProbes),
		input: measure.InferInput{
			Graph:     g,
			Mapper:    addr.PerfectMapper{Space: space},
			OriginASN: peering.PEERINGASN,
			LinkOf: func(prov int) (bgp.LinkID, bool) {
				return plat.LinkByProvider(g.ASN(prov))
			},
		},
	}
}

func anycastAll(n int) bgp.Config {
	anns := make([]bgp.Announcement, n)
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	return bgp.Config{Anns: anns}
}

func scenario(t *testing.T, name string) fault.Profile {
	t.Helper()
	p, err := fault.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wrongFraction counts observed cells whose inferred catchment differs
// from the routing truth.
func wrongFraction(m *measure.CatchmentMeasurement, out *bgp.Outcome) float64 {
	if m.ObservedCount() == 0 {
		return 0
	}
	wrong := 0
	for i := range m.Catchment {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			wrong++
		}
	}
	return float64(wrong) / float64(m.ObservedCount())
}

// TestModalityLossScenarios: inference survives the total loss of one
// measurement modality — what the feed-gap profile does in the extreme.
func TestModalityLossScenarios(t *testing.T) {
	cases := []struct {
		name                  string
		seed                  uint64
		nCollectors, nProbes  int
		noise                 measure.NoiseParams
		wrongBudget           float64
		wantNoFeeds, wantNoTR bool
	}{
		{name: "no-collectors", seed: 71, nCollectors: 0, nProbes: 300,
			noise: measure.DefaultNoise(), wrongBudget: 0.05, wantNoFeeds: true},
		{name: "no-probes", seed: 72, nCollectors: 150, nProbes: 0,
			noise: measure.DefaultNoise(), wrongBudget: 0, wantNoTR: true},
		{name: "total-probe-loss", seed: 74, nCollectors: 50, nProbes: 200,
			noise: func() measure.NoiseParams {
				n := measure.DefaultNoise()
				n.PrProbeFail = 1.0
				return n
			}(), wrongBudget: 0, wantNoTR: true},
		{name: "pathological-noise", seed: 75, nCollectors: 30, nProbes: 200,
			noise:       measure.NoiseParams{PrUnresponsive: 0.7, PrIXPHop: 0.3, RoutersPerAS: 3, Rounds: 2},
			wrongBudget: 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newFailureWorld(t, tc.seed, 800, tc.nCollectors, tc.nProbes)
			out, err := w.platform.Deploy(anycastAll(7))
			if err != nil {
				t.Fatal(err)
			}
			obs := measure.Collect(out, w.vantages, w.space, tc.noise, stats.NewRNG(tc.seed))
			if tc.wantNoFeeds && len(obs.BGPPaths) != 0 {
				t.Fatal("expected no collector paths")
			}
			if tc.wantNoTR && len(obs.Traceroutes) != 0 {
				t.Fatal("expected no traceroutes")
			}
			m := measure.Infer(obs, w.input)
			if m.ObservedCount() == 0 {
				t.Fatal("the surviving modality should still observe ASes")
			}
			if frac := wrongFraction(m, out); frac > tc.wrongBudget {
				t.Fatalf("%s corrupted %.1f%% of observations (budget %.0f%%)",
					tc.name, frac*100, tc.wrongBudget*100)
			}
		})
	}
}

// TestFeedGapProfileDegradesWithoutCorrupting: the feed-gap scenario
// starves inference of collector feeds and traceroutes. Coverage may
// shrink; the cells that survive must stay correct within the normal
// noise budget.
func TestFeedGapProfileDegradesWithoutCorrupting(t *testing.T) {
	w := newFailureWorld(t, 76, 800, 100, 300)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	clean := measure.Collect(out, w.vantages, w.space, measure.DefaultNoise(), stats.NewRNG(6))
	base := measure.Infer(clean, w.input)

	faulty := measure.Collect(out, w.vantages, w.space, measure.DefaultNoise(), stats.NewRNG(6))
	inj := fault.New(scenario(t, "feed-gap"), 9, w.platform.NumLinks())
	feeds, probes := inj.PerturbObservation(0, &faulty)
	if feeds == 0 || probes == 0 {
		t.Fatalf("feed-gap injected nothing (feeds=%d probes=%d)", feeds, probes)
	}
	if inj.Count(fault.KindFeedGap) != int64(feeds) || inj.Count(fault.KindProbeLoss) != int64(probes) {
		t.Fatal("injector counters disagree with reported drops")
	}
	m := measure.Infer(faulty, w.input)
	if m.ObservedCount() == 0 {
		t.Fatal("feed-gap must degrade coverage, not erase it")
	}
	if m.ObservedCount() > base.ObservedCount() {
		t.Fatalf("dropping evidence grew coverage: %d > %d", m.ObservedCount(), base.ObservedCount())
	}
	if frac := wrongFraction(m, out); frac > 0.05 {
		t.Fatalf("feed-gap corrupted %.1f%% of surviving observations", frac*100)
	}
}

// TestFeedGapStableAcrossRetries: the profile's fault schedule is a
// function of (seed, config, site), not of time or call order — two
// identical collections perturbed by two identically-seeded injectors
// end up byte-identical, which is what makes campaign retries
// reproducible.
func TestFeedGapStableAcrossRetries(t *testing.T) {
	w := newFailureWorld(t, 77, 600, 80, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	perturbed := func() measure.Observation {
		obs := measure.Collect(out, w.vantages, w.space, measure.DefaultNoise(), stats.NewRNG(4))
		inj := fault.New(scenario(t, "feed-gap"), 21, w.platform.NumLinks())
		inj.PerturbObservation(3, &obs)
		return obs
	}
	a, b := perturbed(), perturbed()
	if !reflect.DeepEqual(a.BGPPaths, b.BGPPaths) {
		t.Fatal("feed gaps differ across retries of the same configuration")
	}
	if !reflect.DeepEqual(a.Traceroutes, b.Traceroutes) {
		t.Fatal("probe losses differ across retries of the same configuration")
	}
	// A different configuration draws a different schedule.
	obs := measure.Collect(out, w.vantages, w.space, measure.DefaultNoise(), stats.NewRNG(4))
	inj := fault.New(scenario(t, "feed-gap"), 21, w.platform.NumLinks())
	inj.PerturbObservation(4, &obs)
	if reflect.DeepEqual(a.BGPPaths, obs.BGPPaths) && reflect.DeepEqual(a.Traceroutes, obs.Traceroutes) {
		t.Fatal("different configurations drew identical fault schedules")
	}
}

func TestInferEmptyObservation(t *testing.T) {
	w := newFailureWorld(t, 73, 400, 10, 10)
	m := measure.Infer(measure.Observation{BGPPaths: map[int][]topo.ASN{}}, w.input)
	if m.ObservedCount() != 0 || m.MultiCatchment != 0 {
		t.Fatal("empty observation should observe nothing")
	}
}

// TestBlackoutMaskThenImpute: a profile hiding every source turns a
// configuration's measurement into a blackout; smax imputation is also
// blind there, so every cell stays unknown and clustering by that
// configuration cannot split anything.
func TestBlackoutMaskThenImpute(t *testing.T) {
	mk := func(links []bgp.LinkID, observed []bool) *measure.CatchmentMeasurement {
		return &measure.CatchmentMeasurement{Catchment: links, Observed: observed}
	}
	baseline := mk([]bgp.LinkID{0, 0, 1, 1}, []bool{true, true, true, true})
	blackout := mk([]bgp.LinkID{0, 1, 0, 1}, []bool{true, true, true, true})
	inj := fault.New(fault.Profile{Name: "blackout", HideVisibility: 1.0}, 5, 2)
	if hidden := inj.Mask(1, blackout); hidden != 4 {
		t.Fatalf("full-visibility mask hid %d of 4", hidden)
	}
	for i := range blackout.Catchment {
		if blackout.Observed[i] || blackout.Catchment[i] != bgp.NoLink {
			t.Fatal("masked cells must be unobserved and unrouted")
		}
	}
	res := measure.Impute([]*measure.CatchmentMeasurement{baseline, blackout})
	if len(res.Sources) != 4 {
		t.Fatalf("sources = %v", res.Sources)
	}
	for k := range res.Sources {
		if res.Catchments[1][k] != bgp.NoLink {
			t.Fatal("blackout config fabricated a catchment")
		}
	}
	if res.Imputed != 0 {
		t.Fatalf("Imputed = %d, want 0 (nothing to copy from)", res.Imputed)
	}
}

// TestPartialMaskIsDeterministic: the same (config, source) pair is
// hidden or visible consistently across retries, and masking only ever
// removes evidence.
func TestPartialMaskIsDeterministic(t *testing.T) {
	const n = 200
	mk := func() *measure.CatchmentMeasurement {
		m := &measure.CatchmentMeasurement{
			Catchment: make([]bgp.LinkID, n),
			Observed:  make([]bool, n),
		}
		for i := range m.Observed {
			m.Catchment[i] = bgp.LinkID(i % 3)
			m.Observed[i] = true
		}
		return m
	}
	prof := scenario(t, "feed-gap")
	a, b := mk(), mk()
	ha := fault.New(prof, 8, 2).Mask(2, a)
	hb := fault.New(prof, 8, 2).Mask(2, b)
	if ha == 0 || ha == n {
		t.Fatalf("partial visibility hid %d of %d", ha, n)
	}
	if ha != hb || !reflect.DeepEqual(a, b) {
		t.Fatal("mask differs across retries of the same configuration")
	}
	for i := range a.Observed {
		if a.Observed[i] && a.Catchment[i] != bgp.LinkID(i%3) {
			t.Fatal("mask corrupted a surviving cell")
		}
	}
}
