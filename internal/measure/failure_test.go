package measure

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// Failure injection: the inference pipeline must degrade gracefully when
// entire measurement modalities disappear or misbehave.

func TestInferWithoutCollectors(t *testing.T) {
	w := newMeasureWorld(t, 71, 800, 0, 300)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	obs := Collect(out, w.vantages, w.space, DefaultNoise(), stats.NewRNG(1))
	if len(obs.BGPPaths) != 0 {
		t.Fatal("expected no collector paths")
	}
	m := Infer(obs, w.input)
	if m.ObservedCount() == 0 {
		t.Fatal("traceroutes alone should still observe ASes")
	}
	wrong := 0
	for i := range m.Catchment {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(m.ObservedCount()); frac > 0.05 {
		t.Fatalf("traceroute-only inference wrong for %.1f%%", frac*100)
	}
}

func TestInferWithoutProbes(t *testing.T) {
	w := newMeasureWorld(t, 72, 800, 150, 0)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	obs := Collect(out, w.vantages, w.space, DefaultNoise(), stats.NewRNG(2))
	if len(obs.Traceroutes) != 0 {
		t.Fatal("expected no traceroutes")
	}
	m := Infer(obs, w.input)
	if m.ObservedCount() == 0 {
		t.Fatal("BGP paths alone should still observe ASes")
	}
	// Control-plane evidence is exact in this simulator.
	for i := range m.Catchment {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			t.Fatal("BGP-only inference produced a wrong catchment")
		}
	}
}

func TestInferEmptyObservation(t *testing.T) {
	w := newMeasureWorld(t, 73, 400, 10, 10)
	m := Infer(Observation{BGPPaths: map[int][]topo.ASN{}}, w.input)
	if m.ObservedCount() != 0 || m.MultiCatchment != 0 {
		t.Fatal("empty observation should observe nothing")
	}
}

func TestInferTotalProbeLoss(t *testing.T) {
	w := newMeasureWorld(t, 74, 600, 50, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	noise := DefaultNoise()
	noise.PrProbeFail = 1.0 // every traceroute lost
	obs := Collect(out, w.vantages, w.space, noise, stats.NewRNG(3))
	if len(obs.Traceroutes) != 0 {
		t.Fatal("probe loss not applied")
	}
	m := Infer(obs, w.input)
	if m.ObservedCount() == 0 {
		t.Fatal("collector evidence should survive probe loss")
	}
}

func TestInferSurvivesPathologicalNoise(t *testing.T) {
	// Extreme unresponsiveness: inference must not crash and must not
	// fabricate much. Accuracy bounds are loose by design.
	w := newMeasureWorld(t, 75, 600, 30, 200)
	out, err := w.platform.Deploy(anycastAll(7))
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseParams{PrUnresponsive: 0.7, PrIXPHop: 0.3, RoutersPerAS: 3, Rounds: 2}
	obs := Collect(out, w.vantages, w.space, noise, stats.NewRNG(4))
	m := Infer(obs, w.input)
	wrong := 0
	for i := range m.Catchment {
		if m.Observed[i] && m.Catchment[i] != out.CatchmentOf(i) {
			wrong++
		}
	}
	if m.ObservedCount() > 0 {
		if frac := float64(wrong) / float64(m.ObservedCount()); frac > 0.25 {
			t.Fatalf("pathological noise corrupted %.1f%% of observations", frac*100)
		}
	}
}

func TestImputeAllMissingConfig(t *testing.T) {
	// A configuration where nothing was observed: smax is also blind
	// there, so every cell stays unknown and clustering by that config
	// cannot split anything.
	mk := func(links []bgp.LinkID, observed []bool) *CatchmentMeasurement {
		return &CatchmentMeasurement{Catchment: links, Observed: observed}
	}
	baseline := mk([]bgp.LinkID{0, 0, 1, 1}, []bool{true, true, true, true})
	blackout := mk([]bgp.LinkID{bgp.NoLink, bgp.NoLink, bgp.NoLink, bgp.NoLink}, []bool{false, false, false, false})
	res := Impute([]*CatchmentMeasurement{baseline, blackout})
	if len(res.Sources) != 4 {
		t.Fatalf("sources = %v", res.Sources)
	}
	for k := range res.Sources {
		if res.Catchments[1][k] != bgp.NoLink {
			t.Fatal("blackout config fabricated a catchment")
		}
	}
	if res.Imputed != 0 {
		t.Fatalf("Imputed = %d, want 0 (nothing to copy from)", res.Imputed)
	}
}
