package measure

import "spooftrack/internal/bgp"

// Imputation implements §IV-d (source visibility): the analysis is
// limited to the sources observed in the first (baseline) configuration,
// and for configurations where a source s was not observed, s is
// assigned the catchment of smax — the other source whose catchment s
// appeared in most frequently across configurations where s was
// observed.

// maxSimilarityConfigs bounds the number of configurations sampled when
// computing pairwise co-catchment frequencies; beyond this, configs are
// sampled evenly. This keeps imputation O(S² · maxSimilarityConfigs)
// instead of O(S² · C) for long campaigns.
const maxSimilarityConfigs = 128

// ImputeResult is the output of the visibility-imputation step.
type ImputeResult struct {
	// Sources are the dense indices of ASes observed in the baseline
	// (first) measurement, in ascending order.
	Sources []int
	// Catchments[c][k] is the (possibly imputed) catchment of
	// Sources[k] in configuration c; bgp.NoLink if still unknown (smax
	// also unobserved).
	Catchments [][]bgp.LinkID
	// Imputed counts how many (config, source) cells were filled via
	// smax.
	Imputed int
	// Smax[k] is the index (into Sources) of the most-similar source
	// used to fill Sources[k], or -1 if never needed.
	Smax []int
}

// Impute runs visibility imputation over a campaign's measurements.
// ms[c].Catchment holds per-AS inferred catchments for configuration c;
// ms[0] is the baseline (full anycast, no prepending or poisoning).
func Impute(ms []*CatchmentMeasurement) *ImputeResult {
	if len(ms) == 0 {
		return &ImputeResult{}
	}
	base := ms[0]
	var sources []int
	for i, obs := range base.Observed {
		if obs {
			sources = append(sources, i)
		}
	}
	s := len(sources)
	c := len(ms)
	res := &ImputeResult{
		Sources:    sources,
		Catchments: make([][]bgp.LinkID, c),
		Smax:       make([]int, s),
	}
	for k := range res.Smax {
		res.Smax[k] = -1
	}

	// sig[k][cc] = observed catchment of source k in config cc, encoded
	// as link+1 in a byte (0 = unobserved). Catchment ids fit a byte for
	// any realistic peering footprint.
	sig := make([][]byte, s)
	for k, src := range sources {
		row := make([]byte, c)
		for cc := 0; cc < c; cc++ {
			if l := ms[cc].Catchment[src]; l != bgp.NoLink {
				row[cc] = byte(l) + 1
			}
		}
		sig[k] = row
	}

	// Sampled config positions for similarity computation.
	sample := make([]int, 0, maxSimilarityConfigs)
	if c <= maxSimilarityConfigs {
		for cc := 0; cc < c; cc++ {
			sample = append(sample, cc)
		}
	} else {
		for k := 0; k < maxSimilarityConfigs; k++ {
			sample = append(sample, k*c/maxSimilarityConfigs)
		}
	}

	smaxOf := func(k int) int {
		best, bestScore := -1, -1
		row := sig[k]
		for t := 0; t < s; t++ {
			if t == k {
				continue
			}
			other := sig[t]
			score := 0
			for _, cc := range sample {
				if row[cc] != 0 && row[cc] == other[cc] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = t, score
			}
		}
		return best
	}

	for cc := 0; cc < c; cc++ {
		filled := make([]bgp.LinkID, s)
		for k, src := range sources {
			if l := ms[cc].Catchment[src]; l != bgp.NoLink {
				filled[k] = l
				continue
			}
			if res.Smax[k] == -1 {
				res.Smax[k] = smaxOf(k)
			}
			t := res.Smax[k]
			if t >= 0 && sig[t][cc] != 0 {
				filled[k] = bgp.LinkID(sig[t][cc] - 1)
				res.Imputed++
			} else {
				filled[k] = bgp.NoLink
			}
		}
		res.Catchments[cc] = filled
	}
	return res
}
