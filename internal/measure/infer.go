package measure

import (
	"strings"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/topo"
)

// CatchmentMeasurement is the inferred catchment assignment for one
// deployed configuration.
type CatchmentMeasurement struct {
	// Catchment[i] is the link whose catchment AS i was inferred to be
	// in, or bgp.NoLink when i was not observed.
	Catchment []bgp.LinkID
	// Observed[i] reports whether any evidence covered AS i.
	Observed []bool
	// MultiCatchment is the number of ASes with conflicting evidence
	// (observed in more than one catchment, §IV-c reports 2.28% on
	// average).
	MultiCatchment int
}

// Unobserved returns an n-AS measurement with no evidence at all: every
// catchment bgp.NoLink, nothing observed. Campaigns record it for
// configurations whose measurement was permanently lost (fault retries
// exhausted); Impute leaves its unknown cells unknown, so localization
// proceeds with partial intersections instead of aborting.
func Unobserved(n int) *CatchmentMeasurement {
	m := &CatchmentMeasurement{
		Catchment: make([]bgp.LinkID, n),
		Observed:  make([]bool, n),
	}
	for i := range m.Catchment {
		m.Catchment[i] = bgp.NoLink
	}
	return m
}

// ObservedCount returns the number of ASes with any evidence.
func (m *CatchmentMeasurement) ObservedCount() int {
	n := 0
	for _, o := range m.Observed {
		if o {
			n++
		}
	}
	return n
}

// InferInput carries the static context the inference pipeline needs.
type InferInput struct {
	Graph  *topo.Graph
	Mapper addr.Mapper
	// OriginASN terminates AS-paths (announcement stuffing starts at its
	// first occurrence).
	OriginASN topo.ASN
	// LinkOf resolves a provider AS (dense index) to its peering link;
	// ok=false if the AS is not a platform provider.
	LinkOf func(provider int) (bgp.LinkID, bool)
}

// Infer runs the full §IV-b/c pipeline on one observation: repairs
// traceroutes, maps them to AS-level paths, extracts catchment evidence
// from BGP paths (high priority) and traceroutes (low priority), and
// resolves conflicts by priority then majority vote.
func Infer(obs Observation, in InferInput) *CatchmentMeasurement {
	n := in.Graph.NumASes()
	m := &CatchmentMeasurement{
		Catchment: make([]bgp.LinkID, n),
		Observed:  make([]bool, n),
	}
	for i := range m.Catchment {
		m.Catchment[i] = bgp.NoLink
	}

	// evidence[i] counts observations per link, separately by source
	// type; small fixed-size maps keyed by link.
	type votes map[bgp.LinkID]int
	bgpVotes := make(map[int]votes)
	trVotes := make(map[int]votes)
	add := func(dst map[int]votes, as int, l bgp.LinkID) {
		v, ok := dst[as]
		if !ok {
			v = make(votes, 2)
			dst[as] = v
		}
		v[l]++
	}

	// BGP evidence: every AS on a collector's path up to the provider is
	// routed via that path's link.
	seqIdx := newASSeqIndex(obs.BGPPaths, in.OriginASN)
	for _, path := range obs.BGPPaths {
		prefix, provider, ok := splitPath(path, in.OriginASN, in.Graph, in.LinkOf)
		if !ok {
			continue
		}
		for _, as := range prefix {
			add(bgpVotes, as, provider)
		}
	}

	// Traceroute evidence, after the three repair stages.
	repaired := RepairUnresponsive(obs.Traceroutes)
	for _, tr := range repaired {
		asPath := ASLevelPath(tr, in.Graph, in.Mapper, seqIdx)
		if len(asPath) == 0 {
			continue
		}
		provider := asPath[len(asPath)-1]
		link, ok := in.LinkOf(provider)
		if !ok {
			continue // mapping noise garbled the provider; unattributable
		}
		for _, as := range asPath {
			add(trVotes, as, link)
		}
	}

	// Resolution: BGP beats traceroute; within a type, majority vote
	// with deterministic tie-breaking toward the lowest link id.
	resolve := func(v votes) bgp.LinkID {
		best, bestN := bgp.NoLink, 0
		for l, c := range v {
			if c > bestN || (c == bestN && l < best) {
				best, bestN = l, c
			}
		}
		return best
	}
	for i := 0; i < n; i++ {
		bv, hasB := bgpVotes[i]
		tv, hasT := trVotes[i]
		if !hasB && !hasT {
			continue
		}
		m.Observed[i] = true
		if hasB {
			m.Catchment[i] = resolve(bv)
		} else {
			m.Catchment[i] = resolve(tv)
		}
		// Conflict accounting across all evidence.
		links := make(map[bgp.LinkID]bool, 2)
		for l := range bv {
			links[l] = true
		}
		for l := range tv {
			links[l] = true
		}
		if len(links) > 1 {
			m.MultiCatchment++
		}
	}
	return m
}

// splitPath cuts an AS-path at the first occurrence of the origin ASN
// and resolves the provider (last topology AS before it) to a link. The
// returned prefix contains dense indices of all topology ASes before the
// origin.
func splitPath(path []topo.ASN, origin topo.ASN, g *topo.Graph, linkOf func(int) (bgp.LinkID, bool)) ([]int, bgp.LinkID, bool) {
	cut := -1
	for k, asn := range path {
		if asn == origin {
			cut = k
			break
		}
	}
	if cut <= 0 {
		return nil, bgp.NoLink, false
	}
	provIdx, ok := g.Index(path[cut-1])
	if !ok {
		return nil, bgp.NoLink, false
	}
	link, ok := linkOf(provIdx)
	if !ok {
		return nil, bgp.NoLink, false
	}
	prefix := make([]int, 0, cut)
	for _, asn := range path[:cut] {
		if i, ok := g.Index(asn); ok {
			prefix = append(prefix, i)
		}
	}
	return prefix, link, true
}

// asSeqIndex indexes, for pairs of ASNs seen on BGP paths, the unique
// intermediate AS sequence between them (repair stage 3 of §IV-b). A nil
// entry marks a conflicting pair.
type asSeqIndex struct {
	seqs map[[2]topo.ASN][]topo.ASN
	conf map[[2]topo.ASN]bool
}

func newASSeqIndex(paths map[int][]topo.ASN, origin topo.ASN) *asSeqIndex {
	idx := &asSeqIndex{
		seqs: make(map[[2]topo.ASN][]topo.ASN),
		conf: make(map[[2]topo.ASN]bool),
	}
	for _, path := range paths {
		// Only the part before announcement stuffing is a real AS chain.
		end := len(path)
		for k, asn := range path {
			if asn == origin {
				end = k
				break
			}
		}
		p := path[:end]
		for i := 0; i < len(p); i++ {
			for j := i + 2; j < len(p) && j-i <= 4; j++ {
				key := [2]topo.ASN{p[i], p[j]}
				if idx.conf[key] {
					continue
				}
				seq := p[i+1 : j]
				if prev, ok := idx.seqs[key]; ok {
					if !asnSeqEqual(prev, seq) {
						idx.conf[key] = true
						delete(idx.seqs, key)
					}
					continue
				}
				idx.seqs[key] = append([]topo.ASN(nil), seq...)
			}
		}
	}
	return idx
}

// lookup returns the unique sequence between a and b, or ok=false.
func (idx *asSeqIndex) lookup(a, b topo.ASN) ([]topo.ASN, bool) {
	seq, ok := idx.seqs[[2]topo.ASN{a, b}]
	return seq, ok
}

func asnSeqEqual(a, b []topo.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ASLevelPath maps a traceroute to an AS-level path of dense indices,
// applying repair stages 2 and 3 of §IV-b: unmapped hops surrounded by a
// single AS collapse into it; unmapped hops between two different ASes
// are bridged by the unique BGP AS sequence when one exists; remaining
// unmapped hops are dropped. Consecutive duplicate ASes collapse.
func ASLevelPath(tr Traceroute, g *topo.Graph, mapper addr.Mapper, seqIdx *asSeqIndex) []int {
	// First map every hop: >=0 AS index, -1 unmapped, -2 destination.
	mapped := make([]int, len(tr.Hops))
	for k, h := range tr.Hops {
		switch {
		case !h.Responsive:
			mapped[k] = -1
		case h.Addr == TargetAddr:
			mapped[k] = -2
		default:
			if i, ok := mapper.Map(h.Addr); ok {
				mapped[k] = i
			} else {
				mapped[k] = -1
			}
		}
	}
	// Collapse consecutive duplicates, keeping unmapped markers.
	var seq []int
	for _, v := range mapped {
		if v == -2 {
			break // destination reached; stuffing after is impossible
		}
		if len(seq) > 0 && seq[len(seq)-1] == v && v >= 0 {
			continue
		}
		// Merge consecutive unmapped markers too.
		if len(seq) > 0 && seq[len(seq)-1] == -1 && v == -1 {
			continue
		}
		seq = append(seq, v)
	}
	// Stage 2 + 3: resolve unmapped runs using surrounding ASes.
	var out []int
	for i := 0; i < len(seq); i++ {
		v := seq[i]
		if v >= 0 {
			if len(out) == 0 || out[len(out)-1] != v {
				out = append(out, v)
			}
			continue
		}
		prev := -1
		if len(out) > 0 {
			prev = out[len(out)-1]
		}
		next := -1
		if i+1 < len(seq) && seq[i+1] >= 0 {
			next = seq[i+1]
		}
		switch {
		case prev >= 0 && prev == next:
			// Same AS on both sides: the gap is inside it; drop marker.
		case prev >= 0 && next >= 0:
			// Different ASes: bridge via unique BGP sequence if known.
			if bridge, ok := seqIdx.lookup(g.ASN(prev), g.ASN(next)); ok {
				for _, asn := range bridge {
					if bi, ok := g.Index(asn); ok && (len(out) == 0 || out[len(out)-1] != bi) {
						out = append(out, bi)
					}
				}
			}
			// Otherwise: drop the hop (ignored on the AS-level path).
		default:
			// Gap at the edges: drop.
		}
	}
	return out
}

// debugString renders a traceroute for test failure messages.
func (tr Traceroute) debugString() string {
	var sb strings.Builder
	for _, h := range tr.Hops {
		if !h.Responsive {
			sb.WriteString("* ")
			continue
		}
		sb.WriteString(h.Addr.String())
		sb.WriteByte(' ')
	}
	return sb.String()
}
