package measure

import (
	"net/netip"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// TargetAddr is the destination probed inside the announced prefix
// (TEST-NET-2 stands in for the PEERING experiment prefix; it is outside
// the topology address grid so it maps to no topology AS).
var TargetAddr = netip.MustParseAddr("198.51.100.1")

// Hop is one traceroute hop. Unresponsive hops have a zero Addr.
type Hop struct {
	Addr       netip.Addr
	Responsive bool
}

// Traceroute is one measurement from a probe AS toward the announced
// prefix.
type Traceroute struct {
	// ProbeAS is the dense index of the AS hosting the probe.
	ProbeAS int
	// Hops are the observed hops, ending at the destination if the
	// prefix was reachable.
	Hops []Hop
	// Reached reports whether the destination answered.
	Reached bool
}

// NoiseParams controls the imperfections injected into synthesized
// traceroutes, modeled on the artifacts §IV-b repairs.
type NoiseParams struct {
	// PrUnresponsive is the per-hop probability of a timeout ("* * *").
	PrUnresponsive float64
	// PrIXPHop is the probability that an AS boundary crossing surfaces
	// an IXP-segment address that maps to no AS.
	PrIXPHop float64
	// PrProbeFail is the probability an entire traceroute is lost
	// (probe offline, rate limiting).
	PrProbeFail float64
	// RoutersPerAS bounds the interface-address diversity per AS.
	RoutersPerAS int
	// Rounds is how many traceroute rounds each probe completes per
	// configuration. The paper sizes its 70-minute slots to collect at
	// least three post-convergence rounds (§IV-b); multiple rounds feed
	// the majority vote of §IV-c.
	Rounds int
}

// DefaultNoise returns noise levels that produce the repair workload the
// paper describes without overwhelming inference.
func DefaultNoise() NoiseParams {
	return NoiseParams{
		PrUnresponsive: 0.10,
		PrIXPHop:       0.06,
		PrProbeFail:    0.04,
		RoutersPerAS:   3,
		Rounds:         3,
	}
}

// SynthesizeTraceroute builds the traceroute a probe in AS probe would
// observe under the routing outcome: two interface hops per transit AS
// (ingress and egress routers), IXP segments at some AS boundaries, and
// unresponsive hops. Returns ok=false when the probe measurement is lost
// entirely or the probe has no route.
func SynthesizeTraceroute(out *bgp.Outcome, space *addr.Space, probe int, noise NoiseParams, rng *stats.RNG) (Traceroute, bool) {
	if rng.Bool(noise.PrProbeFail) {
		return Traceroute{}, false
	}
	dp := out.DataPath(probe)
	if dp == nil {
		return Traceroute{ProbeAS: probe, Reached: false}, true
	}
	routers := noise.RoutersPerAS
	if routers < 1 {
		routers = 1
	}
	tr := Traceroute{ProbeAS: probe, Reached: true}
	emit := func(a netip.Addr) {
		if rng.Bool(noise.PrUnresponsive) {
			tr.Hops = append(tr.Hops, Hop{})
			return
		}
		tr.Hops = append(tr.Hops, Hop{Addr: a, Responsive: true})
	}
	for k, asIdx := range dp {
		if k == 0 {
			// The probe's own egress router.
			emit(space.RouterAddr(asIdx, rng.Intn(routers)))
			continue
		}
		// Boundary crossing into asIdx: sometimes via an IXP segment.
		if rng.Bool(noise.PrIXPHop) {
			emit(addr.IXPAddr(asIdx*7 + k))
		}
		// Ingress and egress interfaces inside asIdx.
		emit(space.RouterAddr(asIdx, rng.Intn(routers)))
		if k < len(dp)-1 {
			emit(space.RouterAddr(asIdx, rng.Intn(routers)))
		}
	}
	// Destination inside the announced prefix.
	tr.Hops = append(tr.Hops, Hop{Addr: TargetAddr, Responsive: true})
	return tr, true
}

// Observation is everything the origin can measure for one deployed
// configuration: the AS-paths seen by route collectors and the
// traceroutes issued from probes.
type Observation struct {
	// BGPPaths maps collector AS (dense index) to the AS-path it
	// selected; collectors without a route are absent.
	BGPPaths map[int][]topo.ASN
	// Traceroutes are the probe measurements that completed.
	Traceroutes []Traceroute
}

// Collect simulates one configuration's measurements for a routing
// outcome: the collector paths plus noise.Rounds rounds of traceroutes
// from every probe. The rng is advanced deterministically; pass a child
// generator per config for reproducibility.
func Collect(out *bgp.Outcome, v VantageSet, space *addr.Space, noise NoiseParams, rng *stats.RNG) Observation {
	obs := Observation{BGPPaths: make(map[int][]topo.ASN, len(v.Collectors))}
	for _, c := range v.Collectors {
		if p := out.ASPath(c); p != nil {
			obs.BGPPaths[c] = p
		}
	}
	rounds := noise.Rounds
	if rounds < 1 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		for _, probe := range v.Probes {
			if tr, ok := SynthesizeTraceroute(out, space, probe, noise, rng); ok && tr.Reached {
				obs.Traceroutes = append(obs.Traceroutes, tr)
			}
		}
	}
	return obs
}
