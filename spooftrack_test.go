package spooftrack

import (
	"testing"

	"spooftrack/internal/topo"
)

// testTracker builds a reduced-scale tracker shared across the public
// API tests.
func testTracker(t testing.TB, seed uint64, useTruth bool) *Tracker {
	t.Helper()
	p := DefaultTrackerParams(seed)
	tp := topo.DefaultGenParams(seed)
	tp.NumASes = 1000
	p.World.Topo = &tp
	p.World.NumProbes = 300
	p.World.NumCollectors = 80
	p.World.MaxPoisonTargets = 20
	p.UseTruth = useTruth
	tr, err := NewTracker(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerEndToEnd(t *testing.T) {
	tr := testTracker(t, 1, false)
	if tr.Campaign.NumConfigs() != 64+294+20 {
		t.Fatalf("campaign has %d configs", tr.Campaign.NumConfigs())
	}
	m := tr.Summary()
	if m.NumClusters == 0 || m.MeanSize < 1 {
		t.Fatalf("bad summary %+v", m)
	}
	asns := tr.SourceASNs()
	if len(asns) != tr.Campaign.NumSources() {
		t.Fatal("SourceASNs length mismatch")
	}
}

func TestTrackerLocalizeSingleAttacker(t *testing.T) {
	tr := testTracker(t, 2, true)
	rng := NewRNG(99)
	placement := tr.PlaceSingleSource(rng)
	volumes := tr.SimulateAttack(placement)
	rep, err := tr.LocalizeAttack(volumes)
	if err != nil {
		t.Fatal(err)
	}
	// The true source must be among the candidates...
	trueIdx := -1
	for k, w := range placement.Weight {
		if w > 0 {
			trueIdx = k
		}
	}
	found := false
	for _, k := range rep.CandidateIndexes {
		if k == trueIdx {
			found = true
		}
	}
	if !found {
		t.Fatal("true attacker eliminated during localization")
	}
	// ...and the candidate set must be small — that is the whole point
	// of the paper. The final cluster of the attacker bounds it.
	clusterSize := tr.Clusters().SizeOfSource(trueIdx)
	if len(rep.CandidateIndexes) > clusterSize {
		t.Fatalf("candidate set %d exceeds attacker cluster size %d",
			len(rep.CandidateIndexes), clusterSize)
	}
}

func TestTrackerEvidence(t *testing.T) {
	tr := testTracker(t, 4, true)
	rng := NewRNG(8)
	placement := tr.PlaceSingleSource(rng)
	volumes := tr.SimulateAttack(placement)
	rep, err := tr.Evidence(volumes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates in evidence report")
	}
	// The true attacker must be the top-ranked candidate (it carried
	// 100% of the volume in every configuration it was observed in).
	trueIdx := -1
	for k, w := range placement.Weight {
		if w > 0 {
			trueIdx = k
		}
	}
	wantASN := tr.World.Graph.ASN(tr.Campaign.Sources[trueIdx])
	top := rep.Candidates[0]
	if top.MeanVolumeShare < 0.99 {
		t.Fatalf("top candidate volume share %.2f", top.MeanVolumeShare)
	}
	found := top.ASN == wantASN
	for _, a := range top.ClusterASNs {
		if a == wantASN {
			found = true
		}
	}
	if !found {
		t.Fatalf("true attacker AS%d not in top candidate's cluster (AS%d)", wantASN, top.ASN)
	}
	if rep.String() == "" {
		t.Fatal("empty render")
	}
}

func TestTrackerLocalizeValidatesInput(t *testing.T) {
	tr := testTracker(t, 2, true) // same seed as above: may hit build cache semantics but fine
	if _, err := tr.LocalizeAttack(nil); err == nil {
		t.Fatal("expected error for mismatched volume rows")
	}
}

func TestPlacementHelpers(t *testing.T) {
	tr := testTracker(t, 3, true)
	rng := NewRNG(5)
	u := tr.PlaceUniformSources(rng, 50)
	if u.TotalVolume() != 50 {
		t.Fatal("uniform placement volume wrong")
	}
	p := tr.PlaceParetoSources(rng, 50)
	if p.TotalVolume() != 50 {
		t.Fatal("pareto placement volume wrong")
	}
}

func TestPublicConstructors(t *testing.T) {
	g, err := GenerateTopology(func() GenParams {
		p := DefaultGenParams(9)
		p.NumASes = 200
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumASes() != 200 {
		t.Fatal("topology size wrong")
	}
	if len(TableI) != 7 {
		t.Fatal("TableI must list 7 muxes")
	}
	if PEERINGASN != 47065 {
		t.Fatal("PEERING ASN wrong")
	}
}
