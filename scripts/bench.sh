#!/bin/sh
# Benchmark-regression harness: runs the propagation-engine
# micro-benchmarks (optimized engine, reference implementation,
# poison-heavy, parallel, traced on/off variants — the latter pair
# guards the tracing-disabled overhead budget — and the delta-propagation
# benchmarks with their 1/5-of-full regression budget), the probe-scan
# benchmarks (pinning that a concurrent SAV scan loop does not perturb
# propagation beyond a 3x budget), the sharded-ingest benchmarks (ring
# routing must stay within 10% of a bare pipeline), and the figure
# benchmarks, then
# records every result — ns/op, B/op, allocs/op, and the figures' custom
# metrics — in BENCH_<date>.json for before/after comparison across
# commits.
#
# Environment knobs:
#   ENGINE_BENCHTIME  -benchtime for the engine micro-benchmarks
#                     (default 20x; raise for stabler numbers)
#   FIGURE_BENCHTIME  -benchtime for the paper-figure benchmarks
#                     (default 1x; each iteration replays a full
#                     campaign, so keep this low)
#   BENCH_OUT         output path (default BENCH_<date>.json)
set -eu
cd "$(dirname "$0")/.."

DATE=$(date +%F)
OUT=${BENCH_OUT:-BENCH_${DATE}.json}
ENGINE_BENCHTIME=${ENGINE_BENCHTIME:-20x}
FIGURE_BENCHTIME=${FIGURE_BENCHTIME:-1x}

TMP=$(mktemp)
PROBE_TMP=$(mktemp)
trap 'rm -f "$TMP" "$PROBE_TMP"' EXIT

echo "==> engine micro-benchmarks (-benchtime $ENGINE_BENCHTIME)"
go test ./internal/bgp/ -run '^$' -bench 'Propagate' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee "$TMP"
# Delta-propagation budget: a one-link campaign step recomputed
# incrementally must stay at or under 1/5 of a full recomputation at the
# 4k tier (the design target is 10x; the CI budget leaves headroom for
# runner scheduling noise).
awk '
/^BenchmarkPropagateDeltaSingleLink/ { delta = $3 }
/^BenchmarkPropagateFullScale/ { full = $3 }
END {
	if (delta + 0 == 0 || full + 0 == 0) {
		print "bench: missing delta-propagation results"; exit 1
	}
	printf "bench: delta one-link step = %.1fx faster than full recomputation\n", full / delta
	if (delta * 5 > full) {
		print "bench: delta one-link step exceeds 1/5 of full propagation"; exit 1
	}
}' "$TMP"

echo "==> topology-generation benchmarks (internet-scale tiers)"
go test ./internal/topo/ -run '^$' -bench 'Generate' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee -a "$TMP"

echo "==> metrics hot-path benchmarks (labeled vector vs plain counter)"
go test ./internal/metrics/ -run '^$' -bench 'PlainCounter|VecObserve' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee -a "$TMP"

echo "==> fault-tolerance overhead benchmarks (fault-off vs baseline must stay within ~5%)"
go test ./internal/peering/ -run '^$' -bench 'PlatformPropagate' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee -a "$TMP"
go test ./internal/stream/ -run '^$' -bench 'StreamIngestShed' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee -a "$TMP"

echo "==> metric-history benchmarks (scrape + range-query cost; scrape-on ingest must stay within 5%)"
go test ./internal/tsdb/ -run '^$' -bench 'TsdbScrape|TsdbQueryRange|TsdbSnapshotAt' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee -a "$TMP"
SCRAPE_TMP=$(mktemp)
# The ingest op is ~100ns, so ENGINE_BENCHTIME's 20x default would
# measure timer noise; pin an iteration count long enough to overlap
# thousands of real scrapes (~0.2s per run).
go test ./internal/stream/ -run '^$' -bench 'StreamIngestScrape' -benchmem \
	-benchtime 2000000x -count 5 | tee "$SCRAPE_TMP"
cat "$SCRAPE_TMP" >>"$TMP"
# History-engine budget: ingest with the tsdb scraping the pipeline's
# registry at a 1ms cadence (1000x production) may cost at most 1.05x
# the scrape-off baseline — scrapes only read the hot path's atomics,
# so anything beyond 5% means the scraper is contending rather than
# observing. Min over -count runs, like the ledger gate, so scheduling
# noise cannot flip the verdict.
awk '
/^BenchmarkStreamIngestScrape\/scrape-off/ { if (off + 0 == 0 || $3 + 0 < off) off = $3 }
/^BenchmarkStreamIngestScrape\/scrape-on/ { if (on + 0 == 0 || $3 + 0 < on) on = $3 }
END {
	if (off + 0 == 0 || on + 0 == 0) {
		print "bench: missing ingest-scrape results"; exit 1
	}
	ratio = on / off
	printf "bench: ingest with live scraping = %.3fx scrape-off baseline\n", ratio
	if (ratio > 1.05) {
		print "bench: metric-history scraping exceeds the 5% ingest overhead budget"; exit 1
	}
}' "$SCRAPE_TMP"
rm -f "$SCRAPE_TMP"

echo "==> sharded-ingest overhead benchmarks (ring routing + relay dispatch must stay within 10% of a bare pipeline)"
SHARD_TMP=$(mktemp)
# Per-event ingest is ~150ns, so pin an iteration count (as with the
# scrape gate) rather than using the wall-clock default.
go test ./internal/shard/ -run '^$' -bench 'ShardIngest|ShardMergeRound' -benchmem \
	-benchtime 1000000x -count 5 | tee "$SHARD_TMP"
cat "$SHARD_TMP" >>"$TMP"
# Sharding budget: routing an event through the consistent-hash ring
# into one of four relay shards may cost at most 1.10x a bare
# single-node pipeline Ingest on the same stream — the ring lookup is
# one hash and one table load, and the route snapshot is lock-free, so
# anything beyond 10% means a lock or allocation leaked onto the packet
# path. Min over -count runs so scheduling noise cannot flip the gate.
awk '
/^BenchmarkShardIngest\/single-node/ { if (single + 0 == 0 || $3 + 0 < single) single = $3 }
/^BenchmarkShardIngest\/sharded-4/ { if (sharded + 0 == 0 || $3 + 0 < sharded) sharded = $3 }
END {
	if (single + 0 == 0 || sharded + 0 == 0) {
		print "bench: missing sharded-ingest results"; exit 1
	}
	ratio = sharded / single
	printf "bench: sharded ingest = %.3fx single-node baseline\n", ratio
	if (ratio > 1.10) {
		print "bench: sharded ingest exceeds the 10% overhead budget"; exit 1
	}
}' "$SHARD_TMP"
rm -f "$SHARD_TMP"

echo "==> probe-scan benchmarks (scan round cost; probe scans must not perturb propagation)"
go test ./internal/probe/ -run '^$' -bench 'ProbeRound|PropagateQuiet|PropagateDuringProbeScan' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" | tee "$PROBE_TMP"
cat "$PROBE_TMP" >>"$TMP"
# Perturbation budget: propagation with a concurrent probe-scan loop may
# cost at most 3x the quiet baseline (generous enough for CI-runner
# scheduling noise, tight enough to catch a lock leaking across the
# subsystems).
awk '
/^BenchmarkPropagateQuiet/ { quiet = $3 }
/^BenchmarkPropagateDuringProbeScan/ { scan = $3 }
END {
	if (quiet + 0 == 0 || scan + 0 == 0) {
		print "bench: missing propagate-perturbation results"; exit 1
	}
	ratio = scan / quiet
	printf "bench: propagate during probe scan = %.2fx quiet baseline\n", ratio
	if (ratio > 3) {
		print "bench: probe scans perturb propagation beyond the 3x budget"; exit 1
	}
}' "$PROBE_TMP"

echo "==> provenance-ledger overhead benchmarks (ledger-on must stay within 5% of ledger-off)"
LEDGER_TMP=$(mktemp)
go test ./internal/core/ -run '^$' -bench 'CampaignLedger' -benchmem \
	-benchtime "$ENGINE_BENCHTIME" -count 3 | tee "$LEDGER_TMP"
cat "$LEDGER_TMP" >>"$TMP"
# Ledger budget: a campaign with full decision-provenance recording may
# cost at most 1.05x the ledger-off baseline — the ledger is a nil check
# per event site when off and lock-sharded appends when on, so anything
# beyond 5% means an allocation leaked onto the hot path. Each side is
# the minimum over -count runs: the min is the least-perturbed sample,
# so runner scheduling noise cannot fail (or pass) the gate spuriously.
awk '
/^BenchmarkCampaignLedgerOff/ { if (off + 0 == 0 || $3 + 0 < off) off = $3 }
/^BenchmarkCampaignLedgerOn/ { if (on + 0 == 0 || $3 + 0 < on) on = $3 }
END {
	if (off + 0 == 0 || on + 0 == 0) {
		print "bench: missing campaign-ledger results"; exit 1
	}
	ratio = on / off
	printf "bench: campaign with ledger = %.3fx ledger-off baseline\n", ratio
	if (ratio > 1.05) {
		print "bench: provenance ledger exceeds the 5% overhead budget"; exit 1
	}
}' "$LEDGER_TMP"
rm -f "$LEDGER_TMP"

echo "==> figure benchmarks (-benchtime $FIGURE_BENCHTIME)"
go test . -run '^$' -bench '.' -benchmem \
	-benchtime "$FIGURE_BENCHTIME" -timeout 60m | tee -a "$TMP"

awk -v date="$DATE" -v goversion="$(go version | sed 's/"/\\"/g')" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"results\": [\n", date, goversion
	n = 0
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		printf ", \"%s\": %s", $(i + 1), $i
	}
	printf "}"
}
END { print "\n  ]\n}" }
' "$TMP" >"$OUT"

echo "bench: wrote $OUT"
