#!/bin/sh
# CI entry point: vet, build, and test the whole module, then run the
# race detector over the concurrency-heavy packages (streaming pipeline
# and honeypot).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race (stream, amp)"
go test -race ./internal/stream/... ./internal/amp/...

echo "ci: all checks passed"
