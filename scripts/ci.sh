#!/bin/sh
# CI entry point: vet, build, and test the whole module, then run the
# race detector over the concurrency-heavy packages (streaming pipeline,
# honeypot, parallel campaign deployment, pooled propagation engine),
# and smoke-test the benchmark harness so a perf regression in the
# engine fast path cannot land silently broken.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race (stream, amp, core, bgp, trace, metrics, watch, tsdb, fault, peering, probe, provenance, shard)"
go test -race ./internal/stream/... ./internal/amp/... ./internal/core/... ./internal/bgp/... ./internal/trace/... ./internal/metrics/... ./internal/watch/... ./internal/tsdb/... ./internal/fault/... ./internal/peering/... ./internal/probe/... ./internal/provenance/... ./internal/shard/...

echo "==> chaos smoke (fixed-seed fault profiles, campaigns must converge)"
go test ./internal/core/ -run 'Chaos' -count=1

echo "==> probe chaos smoke (probe-storm must degrade to low confidence, never wrong)"
go test ./internal/probe/ -run 'ProbeStorm' -count=1

echo "==> provenance replay smoke (ledger must reproduce verdicts byte for byte under faults)"
go test ./internal/provenance/ -run 'Replay' -count=1

echo "==> sharded-ingest chaos smoke (netsplit profile: sharded localization must stay byte-identical to single-node)"
go test ./internal/shard/ -run 'TestChaosByteIdentical/netsplit' -count=1

echo "==> delta-propagation equivalence smoke (full-vs-incremental, race detector on)"
go test -race ./internal/bgp/ -run 'TestPropagateDeltaMatchesFull|TestOutcomeReleaseRecycling' -count=1

echo "==> bench smoke (PropagateFullScale + PropagateDeltaSingleLink, 1 iteration)"
go test ./internal/bgp/ -run '^$' -bench 'PropagateFullScale|PropagateDeltaSingleLink' -benchmem -benchtime 1x

echo "ci: all checks passed"
