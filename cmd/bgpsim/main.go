// Command bgpsim propagates a single announcement configuration over a
// simulated world and dumps the resulting catchments.
//
// Usage:
//
//	bgpsim -links 0,1,2,3,4,5,6                 # plain anycast
//	bgpsim -links 0,1 -prepend 0 -poison 1:4242 # prepend link 0, poison AS4242 on link 1
//	bgpsim -links 0,1 -paths 10                 # also dump 10 sample AS-paths
//	bgpsim -links 0,1 -mrt feed.mrt             # write the collector feed as MRT
//	bgpsim -links 0,1 -announce host:179        # announce over a live BGP session
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/bgpwire"
	"spooftrack/internal/core"
	"spooftrack/internal/measure"
	"spooftrack/internal/peering"
	"spooftrack/internal/topo"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "world seed")
		numASes  = flag.Int("ases", 4000, "topology size")
		links    = flag.String("links", "0,1,2,3,4,5,6", "comma-separated links to announce from")
		prepend  = flag.String("prepend", "", "comma-separated links to prepend on (x4)")
		poison   = flag.String("poison", "", "link:ASN pairs to poison, comma-separated")
		paths    = flag.Int("paths", 0, "dump this many sample AS-paths")
		mrtPath  = flag.String("mrt", "", "write the simulated collector feed to this MRT file")
		announce = flag.String("announce", "", "announce the configuration over a BGP session to this address")
	)
	flag.Parse()

	wp := core.DefaultWorldParams(*seed)
	tp := topo.DefaultGenParams(*seed)
	tp.NumASes = *numASes
	wp.Topo = &tp
	w, err := core.BuildWorld(wp)
	if err != nil {
		fatal(err)
	}

	cfg, err := parseConfig(*links, *prepend, *poison)
	if err != nil {
		fatal(err)
	}
	out, err := w.Platform.Deploy(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("configuration: %v\n", cfg)
	fmt.Printf("routed: %d of %d ASes\n\n", out.NumRouted(), w.Graph.NumASes())
	catchments := out.Catchments()
	var ids []bgp.LinkID
	for l := range catchments {
		ids = append(ids, l)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%-12s %-28s %s\n", "link", "mux (provider AS)", "catchment size")
	for _, l := range ids {
		mux := w.Platform.Muxes()[l]
		fmt.Printf("%-12d %-28s %d\n", int(l),
			fmt.Sprintf("%s (AS%d)", mux.Spec.Name, w.Graph.ASN(mux.Provider)),
			len(catchments[l]))
	}

	if *mrtPath != "" {
		v := measure.ChooseVantages(w.Graph, *seed, 250, 0)
		obs := measure.Observation{BGPPaths: map[int][]topo.ASN{}}
		for _, c := range v.Collectors {
			if p := out.ASPath(c); p != nil {
				obs.BGPPaths[c] = p
			}
		}
		f, err := os.Create(*mrtPath)
		if err != nil {
			fatal(err)
		}
		if err := measure.ExportMRT(f, obs, w.Graph, uint32(time.Now().Unix())); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d collector paths to %s\n", len(obs.BGPPaths), *mrtPath)
	}

	if *announce != "" {
		sess, err := bgpwire.Dial(*announce, bgpwire.SessionConfig{
			LocalAS:  peering.PEERINGASN,
			BGPID:    uint32(peering.PEERINGASN),
			HoldTime: 30 * time.Second,
		})
		if err != nil {
			fatal(err)
		}
		defer sess.Close()
		for _, a := range cfg.Anns {
			u := &bgpwire.Update{
				Path:     a.InitialPath(peering.PEERINGASN),
				NextHop:  netip.MustParseAddr("203.0.113.1"),
				Prefixes: []netip.Prefix{measure.AnnouncedPrefix},
			}
			if err := sess.Announce(u); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\nannounced %d configuration paths to %s (peer AS%d)\n",
			len(cfg.Anns), *announce, sess.PeerAS())
	}

	if *paths > 0 {
		fmt.Printf("\nsample AS-paths:\n")
		step := w.Graph.NumASes() / *paths
		if step == 0 {
			step = 1
		}
		shown := 0
		for i := 0; i < w.Graph.NumASes() && shown < *paths; i += step {
			p := out.ASPath(i)
			if p == nil {
				continue
			}
			strs := make([]string, len(p))
			for k, asn := range p {
				strs[k] = strconv.FormatUint(uint64(asn), 10)
			}
			fmt.Printf("  AS%-6d via link %d: %s\n", w.Graph.ASN(i), out.CatchmentOf(i), strings.Join(strs, " "))
			shown++
		}
	}
}

func parseConfig(links, prepend, poison string) (bgp.Config, error) {
	var cfg bgp.Config
	prepends := map[bgp.LinkID]bool{}
	if prepend != "" {
		for _, s := range strings.Split(prepend, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return cfg, fmt.Errorf("bad prepend link %q: %v", s, err)
			}
			prepends[bgp.LinkID(l)] = true
		}
	}
	poisons := map[bgp.LinkID][]topo.ASN{}
	if poison != "" {
		for _, pair := range strings.Split(poison, ",") {
			parts := strings.SplitN(pair, ":", 2)
			if len(parts) != 2 {
				return cfg, fmt.Errorf("bad poison pair %q (want link:ASN)", pair)
			}
			l, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return cfg, fmt.Errorf("bad poison link %q: %v", parts[0], err)
			}
			asn, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
			if err != nil {
				return cfg, fmt.Errorf("bad poison ASN %q: %v", parts[1], err)
			}
			poisons[bgp.LinkID(l)] = append(poisons[bgp.LinkID(l)], topo.ASN(asn))
		}
	}
	for _, s := range strings.Split(links, ",") {
		l, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return cfg, fmt.Errorf("bad link %q: %v", s, err)
		}
		ann := bgp.Announcement{Link: bgp.LinkID(l)}
		if prepends[ann.Link] {
			ann.Prepend = 4
		}
		ann.Poison = poisons[ann.Link]
		cfg.Anns = append(cfg.Anns, ann)
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bgpsim: %v\n", err)
	os.Exit(1)
}
