// Command spooftrack runs the paper's experiments end-to-end on the
// simulated substrate and prints each table or figure's data.
//
// Usage:
//
//	spooftrack [flags] <experiment>...
//
// where experiment is one of: table1, fig3, fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, headline, all, or one of the extension studies
// extpredict (catchment prediction accuracy), extpoison (targeted
// poisoning of large clusters), extspeed (localization wall-clock time),
// and export (write the campaign dataset to stdout as JSON lines).
//
// Example:
//
//	spooftrack -seed 42 headline fig3 fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spooftrack/internal/core"
	"spooftrack/internal/experiments"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 42, "world seed (drives topology, policies, noise)")
		numASes    = flag.Int("ases", 0, "topology size (0 = default 4000)")
		probes     = flag.Int("probes", 0, "traceroute probe count (0 = default 1600)")
		collectors = flag.Int("collectors", 0, "BGP collector count (0 = default 250)")
		poisons    = flag.Int("poisons", 0, "poison-phase size (0 = paper's 347)")
		truth      = flag.Bool("truth", false, "bypass the measurement pipeline (use true catchments)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spooftrack [flags] <table1|fig3..fig10|headline|all|extpredict|extpoison|extspeed|export>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	params := experiments.LabParams{
		Seed:             *seed,
		NumASes:          *numASes,
		NumProbes:        *probes,
		NumCollectors:    *collectors,
		MaxPoisonTargets: *poisons,
		UseTruth:         *truth,
	}
	if !*quiet {
		params.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "deployed %d/%d configurations\n", done, total)
			}
		}
		fmt.Fprintf(os.Stderr, "building world and deploying campaign (seed %d)...\n", *seed)
	}
	start := time.Now()
	lab, err := experiments.NewLab(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spooftrack: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign ready in %.1fs (%d sources)\n\n",
			time.Since(start).Seconds(), lab.Campaign.NumSources())
	}

	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, name := range []string{"table1", "headline", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
				want[name] = true
			}
			continue
		}
		want[a] = true
	}

	var fig5 *experiments.Fig5Result
	getFig5 := func() *experiments.Fig5Result {
		if fig5 == nil {
			fig5 = experiments.Fig5(lab)
		}
		return fig5
	}

	for _, name := range []string{"table1", "headline", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "extpredict", "extpoison", "extspeed", "extcomm", "extstale", "extremediate", "export"} {
		if !want[name] {
			continue
		}
		delete(want, name)
		switch name {
		case "extpredict":
			res, err := experiments.ExtPrediction(lab)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: extpredict: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(res)
		case "extpoison":
			res, err := experiments.ExtTargetedPoison(lab, 10)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: extpoison: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(res)
		case "extspeed":
			fmt.Println(experiments.ExtSpeed(lab, 5.0, *seed))
		case "extcomm":
			res, err := experiments.ExtCommunities(lab)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: extcomm: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(res)
		case "extstale":
			res, err := experiments.ExtStaleness(lab, 200, 0.05)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: extstale: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(res)
		case "extremediate":
			res, err := experiments.ExtRemediation(lab, 0.5, 100, 10)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: extremediate: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(res)
		case "export":
			if err := core.WriteDataset(os.Stdout, lab.Campaign.Dataset()); err != nil {
				fmt.Fprintf(os.Stderr, "spooftrack: export: %v\n", err)
				os.Exit(1)
			}
		case "table1":
			fmt.Println(experiments.Table1(lab))
		case "headline":
			fmt.Println(experiments.Headline(lab))
		case "fig3":
			fmt.Println(experiments.Fig3(lab))
		case "fig4":
			fmt.Println(experiments.Fig4(lab))
		case "fig5":
			fmt.Println(getFig5())
		case "fig6":
			fmt.Println(getFig5().Fig6String())
		case "fig7":
			fmt.Println(experiments.Fig7(lab))
		case "fig8":
			fmt.Println(experiments.Fig8(lab, experiments.DefaultFig8Params()))
		case "fig9":
			fmt.Println(experiments.Fig9(lab))
		case "fig10":
			fmt.Println(experiments.Fig10(lab, experiments.DefaultFig10Params()))
		}
	}
	for name := range want {
		fmt.Fprintf(os.Stderr, "spooftrack: unknown experiment %q\n", name)
		os.Exit(2)
	}
}
