// Command topogen generates a synthetic AS-level Internet topology and
// writes it in CAIDA AS-relationship format, or summarizes an existing
// topology file.
//
// Usage:
//
//	topogen -ases 4000 -seed 1 -out topology.txt
//	topogen -in topology.txt            # print summary statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spooftrack/internal/topo"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "generator seed")
		numASes  = flag.Int("ases", 4000, "number of ASes")
		tier1    = flag.Int("tier1", 12, "number of tier-1 ASes")
		outPath  = flag.String("out", "", "output path (default stdout)")
		inPath   = flag.String("in", "", "summarize an existing CAIDA file instead of generating")
		validate = flag.Bool("validate", true, "validate structural invariants")
	)
	flag.Parse()

	var g *topo.Graph
	var err error
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err = topo.ReadCAIDA(f)
		if err != nil {
			fatal(err)
		}
		summarize(g)
		return
	}

	p := topo.DefaultGenParams(*seed)
	p.NumASes = *numASes
	p.NumTier1 = *tier1
	g, err = topo.Generate(p)
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := g.Validate(); err != nil {
			fatal(fmt.Errorf("generated topology invalid: %w", err))
		}
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := topo.WriteCAIDA(out, g); err != nil {
		fatal(err)
	}
	if *outPath != "" {
		fmt.Fprintf(os.Stderr, "wrote %d ASes, %d links to %s\n", g.NumASes(), g.NumLinks(), *outPath)
		summarize(g)
	}
}

func summarize(g *topo.Graph) {
	transit := g.TransitASes()
	var coneSizes []int
	for _, i := range transit {
		coneSizes = append(coneSizes, g.CustomerConeSize(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(coneSizes)))
	peerLinks, c2pLinks := 0, 0
	for i := 0; i < g.NumASes(); i++ {
		for _, n := range g.Neighbors(i) {
			if n.Idx < i {
				continue
			}
			if n.Rel == topo.RelPeer {
				peerLinks++
			} else {
				c2pLinks++
			}
		}
	}
	fmt.Fprintf(os.Stderr, "ASes: %d  links: %d (%d transit, %d peering)\n",
		g.NumASes(), g.NumLinks(), c2pLinks, peerLinks)
	fmt.Fprintf(os.Stderr, "tier-1: %d  transit ASes: %d  stubs: %d\n",
		len(g.Tier1s()), len(transit), g.NumASes()-len(transit))
	top := coneSizes
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Fprintf(os.Stderr, "largest customer cones: %v\n", top)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
	os.Exit(1)
}
