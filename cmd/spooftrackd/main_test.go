package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
)

// testMux builds the daemon's HTTP surface over a tiny two-source
// pipeline, without a packet plane.
func testMux(t *testing.T) *http.ServeMux {
	t.Helper()
	reg := metrics.NewRegistry()
	pipe, err := stream.New(stream.Attribution{
		Catchments: [][]bgp.LinkID{{0, 1}, {0, bgp.NoLink}},
		SourceASNs: []topo.ASN{64500, 64501},
		NumLinks:   2,
	}, stream.Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	t.Cleanup(pipe.Close)
	tr := trace.New(trace.Options{Enabled: true, JournalCap: 64})
	sp := tr.Start("test.root")
	sp.End()
	return newMux(pipe, reg, tr)
}

func get(t *testing.T, mux *http.ServeMux, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s body: %v", path, err)
	}
	return res, string(body)
}

func TestHealthz(t *testing.T) {
	res, body := get(t, testMux(t), "/healthz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: status %d body %q", res.StatusCode, body)
	}
}

func TestStatusDecodes(t *testing.T) {
	res, body := get(t, testMux(t), "/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", res.StatusCode)
	}
	var st struct {
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if st.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2 (no rounds folded)", st.Candidates)
	}
}

func TestMetricsListsPipelineCounters(t *testing.T) {
	res, body := get(t, testMux(t), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	if _, ok := snap["stream_events_total"]; !ok {
		t.Fatalf("metrics missing stream_events_total:\n%s", body)
	}
}

func TestEvidenceConflictsBeforeFirstRound(t *testing.T) {
	res, _ := get(t, testMux(t), "/evidence")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("evidence with no rounds: status %d, want %d", res.StatusCode, http.StatusConflict)
	}
}

func TestTraceChromeFormat(t *testing.T) {
	mux := testMux(t)
	for _, path := range []string{"/trace", "/trace?format=chrome"} {
		res, body := get(t, mux, path)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, res.StatusCode)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
		}
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == "test.root" && ev.Ph == "X" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing test.root X event:\n%s", path, body)
		}
	}
}

func TestTraceJSONFormat(t *testing.T) {
	res, body := get(t, testMux(t), "/trace?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace json: status %d", res.StatusCode)
	}
	var doc struct {
		Spans []struct {
			Name  string `json:"name"`
			Start string `json:"start"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace json: %v\n%s", err, body)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "test.root" {
		t.Fatalf("trace json spans = %+v, want one test.root", doc.Spans)
	}
	if _, err := time.Parse(time.RFC3339Nano, doc.Spans[0].Start); err != nil {
		t.Fatalf("trace json start timestamp: %v", err)
	}
}

func TestTraceBadFormat(t *testing.T) {
	res, _ := get(t, testMux(t), "/trace?format=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace bogus format: status %d, want %d", res.StatusCode, http.StatusBadRequest)
	}
}

func TestPprofMounted(t *testing.T) {
	mux := testMux(t)
	res, body := get(t, mux, "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/cmdline")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/symbol")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol: status %d", res.StatusCode)
	}
}

func TestLogLevelParsing(t *testing.T) {
	for _, lv := range []string{"debug", "info", "warn", "error"} {
		if _, err := newLogger(lv); err != nil {
			t.Fatalf("newLogger(%q): %v", lv, err)
		}
	}
	if _, err := newLogger("verbose"); err == nil {
		t.Fatal("newLogger(verbose) should fail")
	}
}
