package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/fault"
	"spooftrack/internal/metrics"
	"spooftrack/internal/peering"
	"spooftrack/internal/probe"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
	"spooftrack/internal/watch"
)

// testMux builds the daemon's HTTP surface over a tiny two-source
// pipeline, without a packet plane.
func testMux(t *testing.T) *http.ServeMux {
	mux, _ := testMuxWatch(t, nil, "")
	return mux
}

// testMuxWatch is testMux with watchdog rules and a bundle directory,
// returning the watchdog so tests can drive Evaluate directly.
func testMuxWatch(t *testing.T, rules []watch.Rule, bundleDir string) (*http.ServeMux, *watch.Watchdog) {
	t.Helper()
	reg := metrics.NewRegistry()
	pipe, err := stream.New(stream.Attribution{
		Catchments: [][]bgp.LinkID{{0, 1}, {0, bgp.NoLink}},
		SourceASNs: []topo.ASN{64500, 64501},
		NumLinks:   2,
	}, stream.Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	t.Cleanup(pipe.Close)
	tr := trace.New(trace.Options{Enabled: true, JournalCap: 64})
	sp := tr.Start("test.root")
	sp.End()
	dog := watch.New(watch.Config{
		Registry:  reg,
		Rules:     rules,
		Tracer:    tr,
		BundleDir: bundleDir,
	})
	return newMux(pipe, reg, tr, dog, nil, peering.NewLinkHealth(2, 0, 0), nil, nil, nil, nil), dog
}

func get(t *testing.T, mux *http.ServeMux, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s body: %v", path, err)
	}
	return res, string(body)
}

func TestHealthz(t *testing.T) {
	res, body := get(t, testMux(t), "/healthz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: status %d body %q", res.StatusCode, body)
	}
}

func TestReadyzHealthy(t *testing.T) {
	res, body := get(t, testMux(t), "/readyz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz: status %d body %q", res.StatusCode, body)
	}
}

// alwaysBreach is a rule that fires on the first evaluation: every
// registry has stream_events_total = 0 > -1.
func alwaysBreach() watch.Rule {
	return watch.Rule{
		Name:      "always-breach",
		Expr:      watch.Metric("stream_events_total"),
		Op:        watch.Above,
		Threshold: -1,
		For:       1,
	}
}

func TestReadyzReportsBreach(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, "")
	if fired := dog.Evaluate(time.Now()); len(fired) != 1 {
		t.Fatalf("expected 1 breach, got %d", len(fired))
	}
	res, body := get(t, mux, "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz in breach: status %d, want 503", res.StatusCode)
	}
	if !strings.Contains(body, "always-breach") {
		t.Fatalf("readyz body should name the breaching rule:\n%s", body)
	}
	// Liveness is unaffected by SLO state.
	if res, _ := get(t, mux, "/healthz"); res.StatusCode != http.StatusOK {
		t.Fatalf("healthz during breach: status %d, want 200", res.StatusCode)
	}
}

func TestSLOStatusEndpoint(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, "")
	dog.Evaluate(time.Now())
	res, body := get(t, mux, "/slo")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("slo: status %d", res.StatusCode)
	}
	var rules []watch.RuleStatus
	if err := json.Unmarshal([]byte(body), &rules); err != nil {
		t.Fatalf("slo is not JSON: %v\n%s", err, body)
	}
	if len(rules) != 1 || rules[0].Name != "always-breach" || !rules[0].Breaching {
		t.Fatalf("slo rules = %+v, want always-breach breaching", rules)
	}
}

func TestDebugBundleNotFoundBeforeBreach(t *testing.T) {
	mux, _ := testMuxWatch(t, []watch.Rule{alwaysBreach()}, t.TempDir())
	res, _ := get(t, mux, "/debug/bundle")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("bundle before breach: status %d, want 404", res.StatusCode)
	}
}

func TestDebugBundleServesLatestBundle(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, t.TempDir())
	if fired := dog.Evaluate(time.Now()); len(fired) != 1 || fired[0].BundlePath == "" {
		t.Fatalf("breach should write a bundle, got %+v", fired)
	}
	res, body := get(t, mux, "/debug/bundle")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bundle after breach: status %d\n%s", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("bundle Content-Type = %q", ct)
	}
	var bundle watch.Bundle
	if err := json.Unmarshal([]byte(body), &bundle); err != nil {
		t.Fatalf("bundle is not JSON: %v\n%s", err, body)
	}
	if bundle.Breach.Rule != "always-breach" {
		t.Fatalf("bundle breach rule = %q, want always-breach", bundle.Breach.Rule)
	}
	if len(bundle.Snapshots) == 0 || bundle.Goroutine == "" {
		t.Fatalf("bundle incomplete: %d snapshots, goroutine %d bytes",
			len(bundle.Snapshots), len(bundle.Goroutine))
	}
}

func TestFaultsEndpointNoInjector(t *testing.T) {
	res, body := get(t, testMux(t), "/faults")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("faults: status %d", res.StatusCode)
	}
	var fs faultsStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatalf("faults is not JSON: %v\n%s", err, body)
	}
	if fs.Profile != "none" {
		t.Fatalf("profile = %q, want none (no injector wired)", fs.Profile)
	}
	if len(fs.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(fs.Links))
	}
	for _, l := range fs.Links {
		if l.State != "closed" {
			t.Fatalf("link %d breaker = %q, want closed", l.Link, l.State)
		}
	}
	if fs.Degraded || fs.DroppedEvents != 0 {
		t.Fatalf("fresh pipeline reports degraded=%v dropped=%d", fs.Degraded, fs.DroppedEvents)
	}
}

func TestStatusDecodes(t *testing.T) {
	res, body := get(t, testMux(t), "/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", res.StatusCode)
	}
	var st struct {
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if st.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2 (no rounds folded)", st.Candidates)
	}
}

func TestMetricsListsPipelineCounters(t *testing.T) {
	res, body := get(t, testMux(t), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	if _, ok := snap["stream_events_total"]; !ok {
		t.Fatalf("metrics missing stream_events_total:\n%s", body)
	}
}

func TestEvidenceConflictsBeforeFirstRound(t *testing.T) {
	res, _ := get(t, testMux(t), "/evidence")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("evidence with no rounds: status %d, want %d", res.StatusCode, http.StatusConflict)
	}
}

func TestTraceChromeFormat(t *testing.T) {
	mux := testMux(t)
	for _, path := range []string{"/trace", "/trace?format=chrome"} {
		res, body := get(t, mux, path)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, res.StatusCode)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
		}
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == "test.root" && ev.Ph == "X" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing test.root X event:\n%s", path, body)
		}
	}
}

func TestTraceJSONFormat(t *testing.T) {
	res, body := get(t, testMux(t), "/trace?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace json: status %d", res.StatusCode)
	}
	var doc struct {
		Spans []struct {
			Name  string `json:"name"`
			Start string `json:"start"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace json: %v\n%s", err, body)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "test.root" {
		t.Fatalf("trace json spans = %+v, want one test.root", doc.Spans)
	}
	if _, err := time.Parse(time.RFC3339Nano, doc.Spans[0].Start); err != nil {
		t.Fatalf("trace json start timestamp: %v", err)
	}
}

func TestTraceBadFormat(t *testing.T) {
	res, _ := get(t, testMux(t), "/trace?format=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace bogus format: status %d, want %d", res.StatusCode, http.StatusBadRequest)
	}
}

func TestPprofMounted(t *testing.T) {
	mux := testMux(t)
	res, body := get(t, mux, "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/cmdline")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/symbol")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol: status %d", res.StatusCode)
	}
}

// testProbeView builds a live prober over a small converged world, the
// way main does, optionally afflicted by the probe-storm fault profile.
// When reg is non-nil the prober is instrumented into it.
func testProbeView(t *testing.T, reg *metrics.Registry, storm bool) *probeView {
	t.Helper()
	p := topo.DefaultGenParams(7)
	p.NumASes = 200
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(7)})
	if err != nil {
		t.Fatal(err)
	}
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := plat.Propagate(bgp.Config{Anns: anns})
	if err != nil {
		t.Fatal(err)
	}
	truth := probe.RandomGroundTruth(g.NumASes(), 0.4, 0.5, 7)
	simnet, err := probe.NewSimNet(out, truth, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probe.Config{
		Net:         simnet,
		TargetLinks: out.CatchmentVector(),
		LinkNames:   plat.LinkNames(),
		PerKind:     2,
	}
	if storm {
		prof, err := fault.ProfileByName("probe-storm")
		if err != nil {
			t.Fatal(err)
		}
		prof.ProbeLatency = 0 // latency is wall-clock sleep; keep the test fast
		cfg.Fault = fault.New(prof, 7, plat.NumLinks())
	}
	pr, err := probe.NewProber(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		pr.Instrument(reg)
	}
	return &probeView{prober: pr, catchment: out.CatchmentVector()}
}

func getProbeStatus(t *testing.T, mux *http.ServeMux) probeStatus {
	t.Helper()
	res, body := get(t, mux, "/probe")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("probe: status %d\n%s", res.StatusCode, body)
	}
	var ps probeStatus
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("probe is not JSON: %v\n%s", err, body)
	}
	return ps
}

func TestProbeEndpointNoProber(t *testing.T) {
	res, body := get(t, testMux(t), "/probe")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("probe with no prober: status %d, want 404\n%s", res.StatusCode, body)
	}
}

func TestProbeEndpointReportsScanAndAudit(t *testing.T) {
	reg := metrics.NewRegistry()
	pv := testProbeView(t, reg, false)
	mux := newMux(nil, reg, nil, nil, nil, nil, pv, nil, nil, nil)
	for i := 0; i < 2; i++ {
		pv.prober.Round(nil)
	}
	ps := getProbeStatus(t, mux)
	if ps.Rounds != 2 || ps.Targets == 0 || ps.Sent == 0 {
		t.Fatalf("probe status after 2 rounds: %+v", ps)
	}
	if ps.Coverage != 1 {
		t.Fatalf("unbounded fault-free rounds should cover every target, got %.3f", ps.Coverage)
	}
	if ps.Lost != 0 || ps.Discarded != 0 {
		t.Fatalf("fault-free scan lost %d / discarded %d probes", ps.Lost, ps.Discarded)
	}
	// The probe channel measures the same ingress links propagation
	// derived: full agreement, zero conflicts.
	if ps.Audit.Agree == 0 || ps.Audit.Conflict != 0 || ps.Audit.ProbeOnly != 0 {
		t.Fatalf("channel audit = %+v, want agreement without conflicts", ps.Audit)
	}
	if len(ps.Outbound) == 0 {
		t.Fatalf("no outbound verdicts after 2 rounds: %+v", ps)
	}
}

// TestProbeEndpointDegradedUnderStorm drives the fault-injected path:
// under probe-storm, /probe must report the losses and the explicit
// low-confidence degradation, and the probe-loss-rate SLO rule (wired
// exactly as in main) must breach.
func TestProbeEndpointDegradedUnderStorm(t *testing.T) {
	reg := metrics.NewRegistry()
	pv := testProbeView(t, reg, true)
	dog := watch.New(watch.Config{
		Registry: reg,
		Rules: []watch.Rule{{
			Name: "probe-loss-rate",
			Expr: watch.Ratio(
				watch.VecSum("probe_lost_total"),
				watch.VecSum("probe_sent_total"),
			),
			Op:        watch.Above,
			Threshold: 0.5,
			For:       1,
		}},
	})
	mux := newMux(nil, reg, nil, dog, nil, nil, pv, nil, nil, nil)
	for i := 0; i < 2; i++ {
		pv.prober.Round(nil)
	}
	ps := getProbeStatus(t, mux)
	if ps.Lost == 0 || float64(ps.Lost)/float64(ps.Sent) < 0.7 {
		t.Fatalf("storm lost %d/%d probes, want ~85%%", ps.Lost, ps.Sent)
	}
	if ps.LowConfidence == 0 {
		t.Fatalf("storm produced no low-confidence verdicts: %+v", ps)
	}
	if fired := dog.Evaluate(time.Now()); len(fired) != 1 || fired[0].Rule != "probe-loss-rate" {
		t.Fatalf("probe-loss-rate should breach under the storm, fired %+v", fired)
	}
	res, body := get(t, mux, "/slo")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "probe-loss-rate") {
		t.Fatalf("slo should list probe-loss-rate: status %d\n%s", res.StatusCode, body)
	}
}

func TestLogLevelParsing(t *testing.T) {
	for _, lv := range []string{"debug", "info", "warn", "error"} {
		if _, err := newLogger(lv); err != nil {
			t.Fatalf("newLogger(%q): %v", lv, err)
		}
	}
	if _, err := newLogger("verbose"); err == nil {
		t.Fatal("newLogger(verbose) should fail")
	}
}
