package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/peering"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
	"spooftrack/internal/watch"
)

// testMux builds the daemon's HTTP surface over a tiny two-source
// pipeline, without a packet plane.
func testMux(t *testing.T) *http.ServeMux {
	mux, _ := testMuxWatch(t, nil, "")
	return mux
}

// testMuxWatch is testMux with watchdog rules and a bundle directory,
// returning the watchdog so tests can drive Evaluate directly.
func testMuxWatch(t *testing.T, rules []watch.Rule, bundleDir string) (*http.ServeMux, *watch.Watchdog) {
	t.Helper()
	reg := metrics.NewRegistry()
	pipe, err := stream.New(stream.Attribution{
		Catchments: [][]bgp.LinkID{{0, 1}, {0, bgp.NoLink}},
		SourceASNs: []topo.ASN{64500, 64501},
		NumLinks:   2,
	}, stream.Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	t.Cleanup(pipe.Close)
	tr := trace.New(trace.Options{Enabled: true, JournalCap: 64})
	sp := tr.Start("test.root")
	sp.End()
	dog := watch.New(watch.Config{
		Registry:  reg,
		Rules:     rules,
		Tracer:    tr,
		BundleDir: bundleDir,
	})
	return newMux(pipe, reg, tr, dog, nil, peering.NewLinkHealth(2, 0, 0)), dog
}

func get(t *testing.T, mux *http.ServeMux, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s body: %v", path, err)
	}
	return res, string(body)
}

func TestHealthz(t *testing.T) {
	res, body := get(t, testMux(t), "/healthz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: status %d body %q", res.StatusCode, body)
	}
}

func TestReadyzHealthy(t *testing.T) {
	res, body := get(t, testMux(t), "/readyz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz: status %d body %q", res.StatusCode, body)
	}
}

// alwaysBreach is a rule that fires on the first evaluation: every
// registry has stream_events_total = 0 > -1.
func alwaysBreach() watch.Rule {
	return watch.Rule{
		Name:      "always-breach",
		Expr:      watch.Metric("stream_events_total"),
		Op:        watch.Above,
		Threshold: -1,
		For:       1,
	}
}

func TestReadyzReportsBreach(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, "")
	if fired := dog.Evaluate(time.Now()); len(fired) != 1 {
		t.Fatalf("expected 1 breach, got %d", len(fired))
	}
	res, body := get(t, mux, "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz in breach: status %d, want 503", res.StatusCode)
	}
	if !strings.Contains(body, "always-breach") {
		t.Fatalf("readyz body should name the breaching rule:\n%s", body)
	}
	// Liveness is unaffected by SLO state.
	if res, _ := get(t, mux, "/healthz"); res.StatusCode != http.StatusOK {
		t.Fatalf("healthz during breach: status %d, want 200", res.StatusCode)
	}
}

func TestSLOStatusEndpoint(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, "")
	dog.Evaluate(time.Now())
	res, body := get(t, mux, "/slo")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("slo: status %d", res.StatusCode)
	}
	var rules []watch.RuleStatus
	if err := json.Unmarshal([]byte(body), &rules); err != nil {
		t.Fatalf("slo is not JSON: %v\n%s", err, body)
	}
	if len(rules) != 1 || rules[0].Name != "always-breach" || !rules[0].Breaching {
		t.Fatalf("slo rules = %+v, want always-breach breaching", rules)
	}
}

func TestDebugBundleNotFoundBeforeBreach(t *testing.T) {
	mux, _ := testMuxWatch(t, []watch.Rule{alwaysBreach()}, t.TempDir())
	res, _ := get(t, mux, "/debug/bundle")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("bundle before breach: status %d, want 404", res.StatusCode)
	}
}

func TestDebugBundleServesLatestBundle(t *testing.T) {
	mux, dog := testMuxWatch(t, []watch.Rule{alwaysBreach()}, t.TempDir())
	if fired := dog.Evaluate(time.Now()); len(fired) != 1 || fired[0].BundlePath == "" {
		t.Fatalf("breach should write a bundle, got %+v", fired)
	}
	res, body := get(t, mux, "/debug/bundle")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bundle after breach: status %d\n%s", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("bundle Content-Type = %q", ct)
	}
	var bundle watch.Bundle
	if err := json.Unmarshal([]byte(body), &bundle); err != nil {
		t.Fatalf("bundle is not JSON: %v\n%s", err, body)
	}
	if bundle.Breach.Rule != "always-breach" {
		t.Fatalf("bundle breach rule = %q, want always-breach", bundle.Breach.Rule)
	}
	if len(bundle.Snapshots) == 0 || bundle.Goroutine == "" {
		t.Fatalf("bundle incomplete: %d snapshots, goroutine %d bytes",
			len(bundle.Snapshots), len(bundle.Goroutine))
	}
}

func TestFaultsEndpointNoInjector(t *testing.T) {
	res, body := get(t, testMux(t), "/faults")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("faults: status %d", res.StatusCode)
	}
	var fs faultsStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatalf("faults is not JSON: %v\n%s", err, body)
	}
	if fs.Profile != "none" {
		t.Fatalf("profile = %q, want none (no injector wired)", fs.Profile)
	}
	if len(fs.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(fs.Links))
	}
	for _, l := range fs.Links {
		if l.State != "closed" {
			t.Fatalf("link %d breaker = %q, want closed", l.Link, l.State)
		}
	}
	if fs.Degraded || fs.DroppedEvents != 0 {
		t.Fatalf("fresh pipeline reports degraded=%v dropped=%d", fs.Degraded, fs.DroppedEvents)
	}
}

func TestStatusDecodes(t *testing.T) {
	res, body := get(t, testMux(t), "/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", res.StatusCode)
	}
	var st struct {
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if st.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2 (no rounds folded)", st.Candidates)
	}
}

func TestMetricsListsPipelineCounters(t *testing.T) {
	res, body := get(t, testMux(t), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	if _, ok := snap["stream_events_total"]; !ok {
		t.Fatalf("metrics missing stream_events_total:\n%s", body)
	}
}

func TestEvidenceConflictsBeforeFirstRound(t *testing.T) {
	res, _ := get(t, testMux(t), "/evidence")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("evidence with no rounds: status %d, want %d", res.StatusCode, http.StatusConflict)
	}
}

func TestTraceChromeFormat(t *testing.T) {
	mux := testMux(t)
	for _, path := range []string{"/trace", "/trace?format=chrome"} {
		res, body := get(t, mux, path)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, res.StatusCode)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
		}
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == "test.root" && ev.Ph == "X" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing test.root X event:\n%s", path, body)
		}
	}
}

func TestTraceJSONFormat(t *testing.T) {
	res, body := get(t, testMux(t), "/trace?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace json: status %d", res.StatusCode)
	}
	var doc struct {
		Spans []struct {
			Name  string `json:"name"`
			Start string `json:"start"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace json: %v\n%s", err, body)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "test.root" {
		t.Fatalf("trace json spans = %+v, want one test.root", doc.Spans)
	}
	if _, err := time.Parse(time.RFC3339Nano, doc.Spans[0].Start); err != nil {
		t.Fatalf("trace json start timestamp: %v", err)
	}
}

func TestTraceBadFormat(t *testing.T) {
	res, _ := get(t, testMux(t), "/trace?format=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace bogus format: status %d, want %d", res.StatusCode, http.StatusBadRequest)
	}
}

func TestPprofMounted(t *testing.T) {
	mux := testMux(t)
	res, body := get(t, mux, "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/cmdline")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", res.StatusCode)
	}
	res, _ = get(t, mux, "/debug/pprof/symbol")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol: status %d", res.StatusCode)
	}
}

func TestLogLevelParsing(t *testing.T) {
	for _, lv := range []string{"debug", "info", "warn", "error"} {
		if _, err := newLogger(lv); err != nil {
			t.Fatalf("newLogger(%q): %v", lv, err)
		}
	}
	if _, err := newLogger("verbose"); err == nil {
		t.Fatal("newLogger(verbose) should fail")
	}
}
