// Command spooftrackd is the live attribution daemon: it runs the
// paper's closed loop as a long-lived service. On startup it performs
// the offline phase (build a world, deploy the announcement campaign,
// measure per-configuration catchments), then brings up the packet
// plane on loopback — an AmpPot-style honeypot behind a border router —
// and feeds every spoofed request through the streaming attribution
// pipeline. When the volume-ranked top cluster is still too coarse, the
// pipeline deploys the next greedy configuration online by swapping the
// border's catchment table.
//
// HTTP endpoints (on -listen):
//
//	/status   pipeline snapshot: clusters, per-link rates, top sources
//	/metrics  expvar-style counters, gauges and histograms
//	/evidence operator-facing localization evidence for the candidates
//	/healthz  liveness probe
//
// With -attackers > 0 the daemon also runs built-in demo attackers that
// flood the border with spoofed requests, so a bare
//
//	spooftrackd
//
// demonstrates the full loop: attack traffic -> streaming attribution
// -> online reconfiguration -> convergence, observable via /status.
// Shut down with SIGINT/SIGTERM; the daemon drains the pipeline, writes
// a final snapshot, and prints the localization outcome.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/core"
	"spooftrack/internal/metrics"
	"spooftrack/internal/stream"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8347", "HTTP status listen address")
		seed          = flag.Uint64("seed", 42, "world seed")
		ases          = flag.Int("ases", 1000, "synthetic topology size (ASes)")
		poison        = flag.Int("poison", 20, "max poisoning-phase targets")
		workers       = flag.Int("workers", 0, "pipeline worker goroutines (0 = auto)")
		threshold     = flag.Int("threshold", 1, "stop refining when the top cluster is this small")
		minRound      = flag.Int64("min-round", 60, "minimum packets before a round is evaluated")
		evalEvery     = flag.Duration("eval", 200*time.Millisecond, "round evaluation interval")
		settle        = flag.Duration("settle", 50*time.Millisecond, "settle window after a reconfiguration")
		maxConfigs    = flag.Int("max-configs", 0, "online reconfiguration budget (0 = unlimited)")
		snapshotPath  = flag.String("snapshot", "", "periodic campaign dataset snapshot path (empty = off)")
		snapshotEvery = flag.Duration("snapshot-every", 30*time.Second, "snapshot interval")
		nAttackers    = flag.Int("attackers", 1, "built-in demo attackers (0 = external traffic only)")
		pps           = flag.Int("pps", 400, "demo attack packets per second per attacker")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Offline phase: world + campaign + measured catchments. UseTruth
	// keeps startup interactive; a real deployment measures instead.
	params := spooftrack.DefaultTrackerParams(*seed)
	tp := spooftrack.DefaultGenParams(*seed)
	tp.NumASes = *ases
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = *poison
	params.UseTruth = true
	log.Printf("offline: building world (%d ASes) and measuring campaign catchments...", *ases)
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatalf("spooftrackd: %v", err)
	}
	camp := tracker.Campaign
	log.Printf("offline: %d configurations, %d sources, %d links",
		camp.NumConfigs(), camp.NumSources(), tracker.World.Platform.NumLinks())

	// Packet plane on loopback: honeypot behind a border router.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatalf("spooftrackd: honeypot: %v", err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		log.Fatalf("spooftrackd: border: %v", err)
	}
	defer border.Close()

	// Streaming attribution pipeline, closed onto the border: deploying
	// a configuration means swapping the live catchment table.
	reg := metrics.NewRegistry()
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		Workers:          *workers,
		EvalInterval:     *evalEvery,
		SplitThreshold:   *threshold,
		MinRoundPackets:  *minRound,
		MaxOnlineConfigs: *maxConfigs,
		Settle:           *settle,
		Metrics:          reg,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
			log.Printf("deploy: configuration %d (%d routed sources)", cfgIdx, len(table))
		},
	})
	if err != nil {
		log.Fatalf("spooftrackd: pipeline: %v", err)
	}
	hp.SetTap(func(ev amp.Event) { pipe.Ingest(ev) })

	// HTTP surface.
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, pipe.Status(10))
	})
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/evidence", func(w http.ResponseWriter, r *http.Request) {
		if pipe.Status(0).Rounds == 0 {
			http.Error(w, "no rounds folded yet: evidence would list every source as a candidate", http.StatusConflict)
			return
		}
		rep, err := pipe.Evidence()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: *listen, Handler: mux}
	httpErr := make(chan error, 1)
	go func() {
		log.Printf("listening on http://%s (/status /metrics /evidence /healthz)", *listen)
		httpErr <- srv.ListenAndServe()
	}()
	log.Printf("honeypot %v, border %v: point spoofed traffic at the border", hp.Addr(), border.Addr())

	// Periodic dataset snapshot of the configurations deployed so far.
	var snapWG chan struct{}
	if *snapshotPath != "" {
		snapWG = make(chan struct{})
		go func() {
			defer close(snapWG)
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := writeSnapshot(*snapshotPath, camp, pipe.Deployed()); err != nil {
						log.Printf("snapshot: %v", err)
					}
				}
			}
		}()
	}

	// Demo traffic: spoofing attackers flooding the border until the
	// daemon shuts down.
	attackers := startAttackers(ctx, tracker, border.Addr(), *nAttackers, *pps)

	<-ctx.Done()
	log.Printf("shutting down: draining pipeline...")

	// Graceful order: stop producers, detach the tap, then drain the
	// pipeline so every accepted event is folded before reporting.
	<-attackers
	hp.SetTap(nil)
	pipe.Close()

	if *snapshotPath != "" {
		<-snapWG
		if err := writeSnapshot(*snapshotPath, camp, pipe.Deployed()); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			log.Printf("final snapshot written to %s", *snapshotPath)
		}
	}

	st := pipe.Status(5)
	log.Printf("processed %d events over %d rounds, %d reconfigurations, converged=%v",
		st.TotalEvents, st.Rounds, st.Reconfigurations, st.Converged)
	if rep, err := pipe.Evidence(); err == nil && st.Rounds > 0 {
		const maxPrint = 10
		for i, c := range rep.Candidates {
			if i == maxPrint {
				log.Printf("... and %d more candidates (see /evidence)", len(rep.Candidates)-maxPrint)
				break
			}
			log.Printf("candidate AS%d: mean volume share %.2f, traffic in %d of %d configurations (cluster size %d)",
				c.ASN, c.MeanVolumeShare, c.ConfigsWithTraffic, c.ConfigsObserved, c.ClusterSize)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http: %v", err)
	}
}

// startAttackers launches n demo attackers spoofing from randomly
// chosen source ASes and returns a channel closed when all have
// stopped. The returned channel is already closed when n <= 0.
func startAttackers(ctx context.Context, tracker *spooftrack.Tracker, borderAddr net.Addr, n, pps int) <-chan struct{} {
	done := make(chan struct{})
	if n <= 0 {
		close(done)
		return done
	}
	rng := spooftrack.NewRNG(tracker.World.Params.Seed ^ 0x5f)
	victim := netip.MustParseAddr("192.0.2.66")
	asns := tracker.SourceASNs()
	burst := pps / 20 // 50ms cadence
	if burst < 1 {
		burst = 1
	}
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			k := rng.Intn(len(asns))
			a, err := amp.NewAttacker(uint32(asns[k]), victim)
			if err != nil {
				log.Printf("attacker: %v", err)
				continue
			}
			defer a.Close()
			log.Printf("demo attacker %d spoofing from AS%d (source %d)", i+1, asns[k], k)
			go func(a *amp.Attacker) {
				t := time.NewTicker(50 * time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						if _, err := a.Flood(borderAddr, burst, 8); err != nil {
							return
						}
					}
				}
			}(a)
		}
		<-ctx.Done()
	}()
	return done
}

// writeSnapshot atomically writes the dataset of the configurations the
// pipeline has deployed so far.
func writeSnapshot(path string, camp *spooftrack.Campaign, deployed []int) error {
	if len(deployed) == 0 {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := core.WriteDataset(f, camp.SubCampaign(deployed).Dataset()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
