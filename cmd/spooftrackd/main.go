// Command spooftrackd is the live attribution daemon: it runs the
// paper's closed loop as a long-lived service. On startup it performs
// the offline phase (build a world, deploy the announcement campaign,
// measure per-configuration catchments), then brings up the packet
// plane on loopback — an AmpPot-style honeypot behind a border router —
// and feeds every spoofed request through the streaming attribution
// pipeline. When the volume-ranked top cluster is still too coarse, the
// pipeline deploys the next greedy configuration online by swapping the
// border's catchment table.
//
// HTTP endpoints (on -listen):
//
//	/status       pipeline snapshot: clusters, per-link rates, top sources
//	/faults       fault-injection stats and per-link circuit-breaker health
//	/probe        active SAV probing: scan status, per-verdict counts, and the
//	              probe-vs-catchment channel audit (404 with -probe-interval 0)
//	/metrics      counters, gauges, histograms and labeled vectors; JSON by
//	              default, Prometheus text format via Accept: text/plain or
//	              ?format=prometheus
//	/query        range queries over the embedded metric history: raw
//	              samples, counter-reset-aware rate(), sum/max aggregation
//	              across vector children, quantile-over-time on histograms
//	              (404 with -scrape-interval 0)
//	/dash         self-contained live dashboard (inline JS sparklines
//	              polling /query; no external assets)
//	/evidence     operator-facing localization evidence for the candidates
//	/explain      decision-provenance: verdict list (JSON), full ledger
//	              timeline (?format=ledger) or DOT provenance graph
//	              (?format=dot); /explain/{cluster} renders the complete
//	              evidence chain behind one cluster of the final verdict,
//	              with an embedded deterministic-replay check
//	              (404 with -ledger=false)
//	/trace        span journal (?format=chrome for chrome://tracing, json for raw)
//	/debug/pprof/ standard Go profiling endpoints
//	/debug/bundle latest SLO-breach diagnostic bundle (404 until one fires)
//	/slo          watchdog rule states (value, threshold, breach streak)
//	/cluster      sharded-ingest state: leader, term, epoch, member states,
//	              deferred/discarded rounds (404 in single-node mode)
//	/shard/*      shard RPC surface: collect/apply/hello (-shard-id mode only)
//	/healthz      liveness probe (process up)
//	/readyz       readiness probe (pipeline running and no SLO in breach)
//
// With -attackers > 0 the daemon also runs built-in demo attackers that
// flood the border with spoofed requests, so a bare
//
//	spooftrackd
//
// demonstrates the full loop: attack traffic -> streaming attribution
// -> online reconfiguration -> convergence, observable via /status.
// Shut down with SIGINT/SIGTERM; the daemon drains the pipeline (bounded
// by -shutdown-timeout), writes a final snapshot, and logs the
// localization outcome.
//
// The ingest tier scales horizontally (internal/shard), in three
// mutually exclusive modes beyond the single-node default:
//
//	-shards N        one process runs N relay shards plus lease-elected
//	                 failover controllers (sharded semantics, single binary)
//	-shard-id ID     this process is one ingest shard: relay pipeline plus
//	                 the /shard RPC surface, driven by a -controller process
//	-controller ...  this process is the merge-and-decide controller for
//	                 the listed shard endpoints (no packet plane)
//
// Multi-process deployments must agree on one attribution matrix: give
// every process the same -seed and the same -topo-file (written with
// -topo-write or topo.WriteCAIDA), and share -lease-file across
// controller replicas so failover is fenced through one lease.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/core"
	"spooftrack/internal/metrics"
	"spooftrack/internal/peering"
	"spooftrack/internal/probe"
	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/shard"
	"spooftrack/internal/spoof"
	"spooftrack/internal/stream"
	"spooftrack/internal/trace"
	"spooftrack/internal/tsdb"
	"spooftrack/internal/watch"
)

// degradedRecoveryWindow is how long the shed-drop counter must stay
// flat (per metric history) before the pipeline's degraded flag may
// clear.
const degradedRecoveryWindow = 30 * time.Second

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8347", "HTTP status listen address")
		seed          = flag.Uint64("seed", 42, "world seed")
		ases          = flag.Int("ases", 1000, "synthetic topology size (ASes)")
		poison        = flag.Int("poison", 20, "max poisoning-phase targets")
		workers       = flag.Int("workers", 0, "pipeline worker goroutines (0 = auto)")
		threshold     = flag.Int("threshold", 1, "stop refining when the top cluster is this small")
		minRound      = flag.Int64("min-round", 60, "minimum packets before a round is evaluated")
		evalEvery     = flag.Duration("eval", 200*time.Millisecond, "round evaluation interval")
		settle        = flag.Duration("settle", 50*time.Millisecond, "settle window after a reconfiguration")
		maxConfigs    = flag.Int("max-configs", 0, "online reconfiguration budget (0 = unlimited)")
		snapshotPath  = flag.String("snapshot", "", "periodic campaign dataset snapshot path (empty = off)")
		snapshotEvery = flag.Duration("snapshot-every", 30*time.Second, "snapshot interval")
		nAttackers    = flag.Int("attackers", 1, "built-in demo attackers (0 = external traffic only)")
		pps           = flag.Int("pps", 400, "demo attack packets per second per attacker")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error")
		shutdownTO    = flag.Duration("shutdown-timeout", 10*time.Second, "max time to drain the pipeline on shutdown")
		traceOn       = flag.Bool("trace", false, "enable structured tracing (serve the journal at /trace)")
		traceJournal  = flag.Int("trace-journal", 16384, "trace journal capacity (spans)")
		watchEvery    = flag.Duration("watch-interval", 5*time.Second, "SLO watchdog evaluation interval")
		bundleDir     = flag.String("bundle-dir", "spooftrackd-bundles", "diagnostic bundle directory (empty = no bundles on breach)")
		lagSLO        = flag.Float64("slo-flush-lag", 2.0, "flush-lag p99 SLO in seconds")
		dropSLO       = flag.Float64("slo-drop-rate", 100, "border drop-rate SLO in packets/second")
		hitSLO        = flag.Float64("slo-cache-hit", 0.10, "outcome-cache hit-rate floor (0..1)")
		shedSLO       = flag.Float64("slo-shed-rate", 50, "pipeline shed-rate SLO in events/second")
		faultProfile  = flag.String("fault-profile", "", "fault-injection scenario (flaky-mux, slow-converge, feed-gap, tap-drop, probe-storm, chaos; empty = off)")
		faultSeed     = flag.Uint64("fault-seed", 1, "deterministic fault-injection seed")
		deployRetries = flag.Int("deploy-retries", 4, "max deploy/measure attempts per configuration")
		shed          = flag.Bool("shed", false, "shed events when ingest queues overflow instead of applying backpressure")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "active SAV probe scan interval (0 = probing off)")
		probeBudget   = flag.Int("probe-budget", 200, "probe targets visited per scan round (0 = all)")
		probeCovSLO   = flag.Float64("slo-probe-coverage", 0.05, "probe-coverage SLO floor (0..1)")
		probeLossSLO  = flag.Float64("slo-probe-loss", 0.9, "probe loss-rate SLO ceiling (0..1)")
		cacheCap      = flag.Int("outcome-cache-cap", 0, "outcome cache capacity in entries (0 = default, negative = unbounded)")
		ledgerOn      = flag.Bool("ledger", true, "record the decision-provenance ledger (serve /explain)")
		scrapeEvery   = flag.Duration("scrape-interval", time.Second, "metric history scrape cadence (0 = history engine off: no /query, /dash, windowed or burn-rate SLOs)")
		dropObjective = flag.Float64("slo-drop-objective", 0.99, "border delivery objective for the drop burn-rate SLO (0..1)")
		dropBurnSLO   = flag.Float64("slo-drop-burn", 2.0, "drop burn-rate SLO threshold (error-budget multiples)")
		topoFile      = flag.String("topo-file", "", "load the AS topology from a CAIDA-serialized file instead of generating one; processes sharing a file and -seed build identical worlds")
		topoWrite     = flag.String("topo-write", "", "serialize the built topology to this file (CAIDA format, loadable with -topo-file) and continue")
		numShards     = flag.Int("shards", 0, "in-process sharded ingest: N relay shards plus lease-elected failover controllers (0 = single-node pipeline)")
		shardID       = flag.String("shard-id", "", "run as one ingest shard: relay pipeline plus the /shard RPC surface, driven by an external -controller process")
		ctrlPeers     = flag.String("controller", "", "run as the sharded-ingest controller for these shards: comma-separated id=http://host:port pairs")
		ctrlID        = flag.String("controller-id", "", "controller identity for lease election (default ctrl-<pid>)")
		leaseFile     = flag.String("lease-file", "", "shared leadership lease file for controller failover (empty = in-memory lease, no cross-process failover)")
	)
	flag.Parse()
	modes := 0
	for _, on := range []bool{*numShards > 0, *shardID != "", *ctrlPeers != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "spooftrackd: -shards, -shard-id, and -controller are mutually exclusive")
		os.Exit(2)
	}

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spooftrackd:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// Tracing and metrics come up before the offline phase so campaign
	// deployment itself is captured. The OnEnd bridge feeds every span's
	// duration into a per-span-name histogram, making trace timings
	// visible on /metrics without exporting the journal.
	reg := metrics.NewRegistry()
	registerRuntimeGauges(reg)
	spanObs := metrics.SpanObserver(reg, "trace_span_")
	// Journal evictions are span loss: a span overwritten before anyone
	// exported it. Counted per span name so a hot path flooding the
	// journal is identifiable (and alertable) from /metrics.
	vEvicted := reg.CounterVec("trace_journal_evicted_total", "track")
	tracer := trace.New(trace.Options{
		Enabled:    *traceOn,
		JournalCap: *traceJournal,
		OnEnd:      func(rec trace.SpanRecord) { spanObs(rec.Name, rec.Duration.Seconds()) },
		OnEvict:    func(rec trace.SpanRecord) { vEvicted.With(rec.Name).Inc() },
	})
	trace.SetGlobal(tracer)

	// Embedded metric history: scrape the registry on a ticker into the
	// Gorilla-compressed tiered store. Everything history-backed — /query,
	// /dash, windowed SLO rates, burn-rate rules, breach-bundle context —
	// hangs off this handle; with -scrape-interval 0 it stays nil and the
	// daemon degrades to instantaneous two-frame semantics.
	var db *tsdb.DB
	if *scrapeEvery > 0 {
		db = tsdb.New(tsdb.Options{Registry: reg, Interval: *scrapeEvery})
		db.Start()
		defer db.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Offline phase: world + campaign + measured catchments. UseTruth
	// keeps startup interactive; a real deployment measures instead.
	params := spooftrack.DefaultTrackerParams(*seed)
	tp := spooftrack.DefaultGenParams(*seed)
	tp.NumASes = *ases
	params.World.Topo = &tp
	if *topoFile != "" {
		g, err := loadTopo(*topoFile)
		if err != nil {
			slog.Error("topology load failed", "path", *topoFile, "err", err)
			os.Exit(1)
		}
		params.World.Graph = g
		slog.Info("topology loaded from file (-ases ignored)", "path", *topoFile, "ases", g.NumASes())
	}
	params.World.MaxPoisonTargets = *poison
	params.World.OutcomeCacheCap = *cacheCap
	params.UseTruth = true
	params.Metrics = reg
	params.FaultProfile = *faultProfile
	params.FaultSeed = *faultSeed
	retry := spooftrack.DefaultRetryPolicy()
	retry.MaxAttempts = *deployRetries
	params.Retry = retry
	// Decision-provenance ledger: built before the tracker so the
	// offline campaign's deploys, retries, and degradations are on the
	// record from the first event. A nil ledger keeps every Record* site
	// a no-op (-ledger=false).
	var led *spooftrack.ProvenanceLedger
	if *ledgerOn {
		led = spooftrack.NewProvenanceLedger()
		led.Instrument(reg)
	}
	params.Ledger = led
	if *faultProfile != "" {
		slog.Info("fault injection enabled", "profile", *faultProfile, "seed", *faultSeed,
			"retries", *deployRetries)
	}
	slog.Info("offline: building world and measuring campaign catchments", "ases", *ases)
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		slog.Error("startup failed", "err", err)
		os.Exit(1)
	}
	camp := tracker.Campaign
	platform := tracker.World.Platform
	slog.Info("offline phase complete",
		"configs", camp.NumConfigs(), "sources", camp.NumSources(), "links", platform.NumLinks())
	if *topoWrite != "" {
		if err := saveTopo(*topoWrite, tracker.World.Graph); err != nil {
			slog.Error("topology write failed", "path", *topoWrite, "err", err)
			os.Exit(1)
		}
		slog.Info("topology written", "path", *topoWrite)
	}
	if len(camp.Incomplete) > 0 {
		slog.Warn("campaign degraded: some configurations permanently failed; localization proceeds with coarser clusters",
			"incomplete", camp.Incomplete)
	}

	// Outcome-cache effectiveness, read on demand at /metrics scrapes.
	reg.GaugeFunc("bgp_outcome_cache_hits", func() float64 {
		h, _ := platform.CacheStats()
		return float64(h)
	})
	reg.GaugeFunc("bgp_outcome_cache_misses", func() float64 {
		_, m := platform.CacheStats()
		return float64(m)
	})
	reg.GaugeFunc("bgp_outcome_cache_size", func() float64 {
		return float64(platform.CacheSize())
	})
	// Labeled family (bgp_outcome_cache_requests_total{result}) counted at
	// the cache itself; the watchdog's hit-rate floor reads it.
	platform.InstrumentCache(reg)

	// The attribution contract every deployment mode shares: the same
	// catchment matrix drives the single-node pipeline, the in-process
	// cluster, a relay shard, and an external controller.
	attr := stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   platform.NumLinks(),
	}

	// Controller mode runs no packet plane: it is the merge-and-decide
	// tier for an external set of shard processes.
	if *ctrlPeers != "" {
		runController(ctx, controllerArgs{
			listen:    *listen,
			id:        *ctrlID,
			peers:     *ctrlPeers,
			leaseFile: *leaseFile,
			attr:      attr,
			eval:      stream.EvalParams{SplitThreshold: *threshold, MaxOnlineConfigs: *maxConfigs},
			minRound:  *minRound,
			interval:  *evalEvery,
			tracker:   tracker,
			reg:       reg,
			tracer:    tracer,
			led:       led,
			db:        db,
		})
		return
	}

	// Packet plane on loopback: honeypot behind a border router.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		slog.Error("honeypot failed", "err", err)
		os.Exit(1)
	}
	defer hp.Close()
	hp.SetMetrics(reg)
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		slog.Error("border failed", "err", err)
		os.Exit(1)
	}
	defer border.Close()
	border.SetMetrics(reg)

	// Re-measurement hints: the probe scan loop publishes the source
	// positions where the probe channel's measured ingress conflicts
	// with the campaign catchment, and the stream controller spends
	// spare reconfiguration budget re-measuring the configuration that
	// covers the most of them.
	var remeasureHints atomic.Pointer[[]int]

	// Per-evaluation callbacks every mode's decision loop consults.
	// Configurations whose links are quarantined by the circuit breaker
	// are routed around until the breaker cools down.
	blockedFn := func() []bool {
		return sched.QuarantineMask(tracker.Plan, platform.Health().IsQuarantined)
	}
	remeasureFn := func() []int {
		if p := remeasureHints.Load(); p != nil {
			return *p
		}
		return nil
	}
	// History-aware recovery: the degraded flag clears only after a
	// full recovery window with zero shed drops, not merely one quiet
	// controller tick — a flapping overload holds the flag instead of
	// strobing /readyz. Without history the controller's own
	// drained-and-quiet check stands alone.
	degradedRecovery := func() bool {
		if db == nil {
			return true
		}
		now := time.Now()
		delta, _, ok := db.Increase("stream_dropped_total", "", now.Add(-degradedRecoveryWindow), now)
		return !ok || delta == 0
	}
	deployFn := func(cfgIdx int, table map[uint32]uint8) {
		border.SetCatchments(table)
		slog.Info("deploy", "config", cfgIdx, "routed_sources", len(table))
	}

	// Streaming attribution, closed onto the border: deploying a
	// configuration means swapping the live catchment table. The same
	// stream.Config drives all three ingest shapes.
	pipeCfg := stream.Config{
		Workers:          *workers,
		EvalInterval:     *evalEvery,
		SplitThreshold:   *threshold,
		MinRoundPackets:  *minRound,
		MaxOnlineConfigs: *maxConfigs,
		Settle:           *settle,
		Metrics:          reg,
		Shed:             *shed,
		DegradedRecovery: degradedRecovery,
		Blocked:          blockedFn,
		Remeasure:        remeasureFn,
		Ledger:           led,
		Deploy:           deployFn,
	}
	var (
		pipe *stream.Pipeline
		node *shard.Node
		cl   *shard.Cluster
		dog  *watch.Watchdog
	)
	switch {
	case *shardID != "":
		// Relay shard: the same pipeline, folded remotely. The external
		// controller owns evaluation and provenance; this process
		// accumulates counters, serves /shard/*, and deploys whatever
		// epoch updates arrive.
		nodeCfg := pipeCfg
		nodeCfg.Ledger = nil
		node, err = shard.NewNode(shard.NodeConfig{
			ID:   *shardID,
			Attr: attr,
			Pipe: nodeCfg,
			// The membership gate the controller polls on every collect:
			// an SLO breach or shed-degradation asks to be drained.
			Ready: func() bool {
				if dog != nil && !dog.Healthy() {
					return false
				}
				return !node.Pipeline().Degraded()
			},
		})
		if err != nil {
			slog.Error("shard node failed", "err", err)
			os.Exit(1)
		}
		pipe = node.Pipeline()
		slog.Info("running as ingest shard", "id", *shardID)
	case *numShards > 0:
		// In-process sharded ingest: relay shards plus failover
		// controllers in one binary — sharded semantics (epochs, terms,
		// drain/evict, provable coarsening) without the fleet.
		cl, err = shard.NewCluster(shard.ClusterConfig{
			Shards:          *numShards,
			Attr:            attr,
			Eval:            stream.EvalParams{SplitThreshold: *threshold, MaxOnlineConfigs: *maxConfigs},
			MinRoundPackets: *minRound,
			Pipe: stream.Config{
				Workers:          *workers,
				Settle:           *settle,
				Metrics:          reg,
				Shed:             *shed,
				DegradedRecovery: degradedRecovery,
				Deploy:           deployFn,
			},
			Injector:  tracker.Fault,
			Blocked:   blockedFn,
			Remeasure: remeasureFn,
			Ledger:    led,
			Metrics:   reg,
		})
		if err != nil {
			slog.Error("cluster failed", "err", err)
			os.Exit(1)
		}
		slog.Info("in-process sharded ingest", "shards", *numShards)
	default:
		pipe, err = stream.New(attr, pipeCfg)
		if err != nil {
			slog.Error("pipeline failed", "err", err)
			os.Exit(1)
		}
	}
	if pipe != nil {
		// The shed/degraded flag as a gauge, so the dashboard and /query
		// see its history (when it flapped, for how long), not just the
		// current boolean on /readyz.
		reg.GaugeFunc("stream_degraded", func() float64 {
			if pipe.Degraded() {
				return 1
			}
			return 0
		})
	}

	var tap amp.Tap
	switch {
	case cl != nil:
		tap = func(ev amp.Event) { cl.Ingest(ev) }
	case node != nil:
		tap = func(ev amp.Event) { node.Ingest(ev) }
	default:
		tap = func(ev amp.Event) { pipe.Ingest(ev) }
	}
	if tracker.Fault != nil && cl == nil {
		// Event-tap drops ride the same injector: the pipeline sees a
		// lossy feed, exercising the degradation path end to end. The
		// cluster rolls the same fault inside Ingest (keeping the drop
		// schedule identical at every shard count), so wrapping its tap
		// too would double-roll it.
		tap = tracker.Fault.WrapTap(tap)
	}
	hp.SetTap(tap)

	// Active probing: the second evidence channel. The prober scans the
	// same converged topology the campaign runs on, sending
	// control/inbound/outbound probes at each target AS and folding the
	// answers into per-AS SAV verdicts with honest confidences. Losses
	// ride the same fault injector as the rest of the daemon, and probe
	// scheduling respects the circuit breaker's link quarantines.
	var pv *probeView
	if *probeInterval > 0 {
		anns := make([]bgp.Announcement, platform.NumLinks())
		for i := range anns {
			anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
		}
		out, err := platform.Propagate(bgp.Config{Anns: anns})
		if err != nil {
			slog.Error("probe baseline propagation failed", "err", err)
			os.Exit(1)
		}
		// The simulated target fleet: seeded SAV ground truth the
		// inference is later judged against (a real deployment probes the
		// actual networks instead).
		truth := probe.RandomGroundTruth(out.Graph().NumASes(), 0.4, 0.5, *seed)
		simnet, err := probe.NewSimNet(out, truth, 0, *seed)
		if err != nil {
			slog.Error("probe network failed", "err", err)
			os.Exit(1)
		}
		pcfg := probe.Config{
			Net:         simnet,
			TargetLinks: out.CatchmentVector(),
			LinkNames:   platform.LinkNames(),
			Budget:      *probeBudget,
			Quarantined: platform.Health().IsQuarantined,
			Tracer:      tracer,
		}
		if tracker.Fault != nil {
			pcfg.Fault = tracker.Fault
		}
		prober, err := probe.NewProber(pcfg)
		if err != nil {
			slog.Error("prober failed", "err", err)
			os.Exit(1)
		}
		prober.Instrument(reg)
		pv = &probeView{prober: prober, catchment: out.CatchmentVector()}
		slog.Info("active SAV probing enabled",
			"targets", prober.NumTargets(), "budget", *probeBudget, "interval", *probeInterval)
	}

	// SLO watchdog: flight-record registry snapshots and drop a diagnostic
	// bundle when the live loop degrades past its objectives.
	dog = watch.New(watch.Config{
		Registry:  reg,
		Interval:  *watchEvery,
		Tracer:    tracer,
		BundleDir: *bundleDir,
		OnBreach:  nil,
		// History-backed evaluation: rate rules average over their Window
		// instead of two adjacent ticks, burn-rate rules compare error
		// budget consumption across fast and slow windows, and breach
		// bundles embed the metric history leading into the breach.
		DB: db,
		BundleHistory: []string{
			"stream_events_total",
			"stream_dropped_total",
			"stream_flush_lag_seconds",
			"amp_border_packets_total",
			"bgp_outcome_cache_requests_total",
		},
		Rules: []watch.Rule{
			{
				Name:      "stream-flush-lag-p99",
				Expr:      watch.Quantile("stream_flush_lag_seconds", 0.99),
				Op:        watch.Above,
				Threshold: *lagSLO,
				For:       3,
			},
			{
				Name:      "border-drop-rate",
				Expr:      watch.Series("amp_border_packets_total", "outcome=dropped"),
				Rate:      true,
				Window:    time.Minute,
				Op:        watch.Above,
				Threshold: *dropSLO,
				For:       3,
			},
			// Multi-window burn rate on border delivery: fires only when
			// the drop fraction consumes the error budget (1−objective)
			// faster than the threshold over BOTH windows — the fast one
			// says the budget is burning now, the slow one proves it is
			// not a blip. Complements the absolute drop-rate rule above:
			// at low traffic a fixed pps threshold stays silent while the
			// drop *fraction* can be catastrophic.
			{
				Name:      "border-drop-burn",
				ErrorExpr: watch.Series("amp_border_packets_total", "outcome=dropped"),
				TotalExpr: watch.VecSum("amp_border_packets_total"),
				Objective: *dropObjective,
				Windows:   []time.Duration{5 * time.Minute, time.Hour},
				Op:        watch.Above,
				Threshold: *dropBurnSLO,
				For:       3,
			},
			{
				Name:      "stream-shed-rate",
				Expr:      watch.Metric("stream_dropped_total"),
				Rate:      true,
				Window:    time.Minute,
				Op:        watch.Above,
				Threshold: *shedSLO,
				For:       3,
			},
			{
				Name: "outcome-cache-hit-rate",
				Expr: watch.Ratio(
					watch.Series("bgp_outcome_cache_requests_total", "result=hit"),
					watch.Sum(
						watch.Series("bgp_outcome_cache_requests_total", "result=hit"),
						watch.Series("bgp_outcome_cache_requests_total", "result=miss"),
					),
				),
				Op:        watch.Below,
				Threshold: *hitSLO,
				For:       3,
			},
			// Probe-channel health. Both rules read metrics the prober
			// registers only when probing is on, so with -probe-interval 0
			// they sit in the no-data state and never fire.
			{
				Name:      "probe-coverage",
				Expr:      watch.Metric("probe_coverage"),
				Op:        watch.Below,
				Threshold: *probeCovSLO,
				For:       3,
			},
			{
				Name: "probe-loss-rate",
				Expr: watch.Ratio(
					watch.VecSum("probe_lost_total"),
					watch.VecSum("probe_sent_total"),
				),
				Op:        watch.Above,
				Threshold: *probeLossSLO,
				For:       3,
			},
		},
	})
	dog.Start()
	defer dog.Stop()

	// The cluster's merge loop: one controller round per tick (election
	// included — the first tick elects, and a crashed controller's
	// standby takes over on lease expiry).
	if cl != nil {
		go func() {
			t := time.NewTicker(*evalEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := cl.Step(false); err != nil {
						slog.Warn("cluster round failed", "err", err)
					}
				}
			}
		}()
	}

	var cv *clusterView
	if cl != nil {
		cv = &clusterView{
			status:  func() shard.ClusterStatus { return cl.Controller().Status() },
			dropped: cl.Dropped,
		}
	}
	mux := newMux(pipe, reg, tracer, dog, tracker.Fault, platform.Health(), pv, led, db, cv)
	if node != nil {
		mux.Handle("/shard/", shard.NodeHandler(node))
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	httpErr := make(chan error, 1)
	go func() {
		slog.Info("http listening", "addr", *listen,
			"endpoints", "/status /faults /probe /metrics /query /dash /evidence /explain /trace /slo /cluster /debug/pprof/ /debug/bundle /healthz /readyz")
		httpErr <- srv.ListenAndServe()
	}()
	slog.Info("packet plane up: point spoofed traffic at the border",
		"honeypot", hp.Addr().String(), "border", border.Addr().String())

	// Periodic dataset snapshot of the configurations deployed so far.
	deployedFn := func() []int {
		if cl != nil {
			return cl.Controller().Status().DeployedConfigs
		}
		return pipe.Deployed()
	}
	var snapWG chan struct{}
	if *snapshotPath != "" {
		snapWG = make(chan struct{})
		go func() {
			defer close(snapWG)
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := writeSnapshot(*snapshotPath, camp, deployedFn()); err != nil {
						slog.Warn("snapshot failed", "err", err)
					}
				}
			}
		}()
	}

	// Probe scan loop: one budget-bounded round per interval, rotating
	// fairly through the target fleet. After each round the loop promotes
	// newly confident verdicts into the provenance ledger and publishes
	// the probe-vs-catchment conflict set as re-measurement hints for the
	// stream controller.
	if pv != nil {
		srcOf := make(map[int]int, camp.NumSources())
		for k, as := range camp.Sources {
			srcOf[as] = k
		}
		go func() {
			t := time.NewTicker(*probeInterval)
			defer t.Stop()
			lastSignal := make(map[int]spoof.SAVSignal)
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rep := pv.prober.Round(nil)
					pv.prober.Inference(func(inf *probe.SAVInference) {
						pc := probe.BuildChannel(inf, 0)
						if led.Enabled() {
							for as, sig := range pc.Signal {
								if sig == spoof.SAVNoData || lastSignal[as] == sig {
									continue
								}
								lastSignal[as] = sig
								src, ok := srcOf[as]
								if !ok {
									src = -1
								}
								led.RecordProbe(provenance.ProbeEvent{
									AS:         as,
									Source:     src,
									Link:       int(pc.Link[as]),
									Signal:     sig.String(),
									Confidence: inf.Report(as).OutConfidence,
									Round:      int(rep.Round),
								})
							}
						}
						audit := probe.Audit(pc, pv.catchment)
						hints := make([]int, 0, len(audit.ConflictASes))
						for _, as := range audit.ConflictASes {
							if src, ok := srcOf[as]; ok {
								hints = append(hints, src)
							}
						}
						remeasureHints.Store(&hints)
					})
					slog.Debug("probe round",
						"round", rep.Round, "visited", rep.Visited, "skipped", rep.Skipped,
						"sent", rep.Sent, "lost", rep.Lost, "answered", rep.Answered,
						"discarded", rep.Discarded, "took", rep.Duration.Round(time.Microsecond))
				}
			}
		}()
	}

	// Demo traffic: spoofing attackers flooding the border until the
	// daemon shuts down.
	attackers := startAttackers(ctx, tracker, border.Addr(), *nAttackers, *pps)

	<-ctx.Done()
	slog.Info("shutting down: draining pipeline", "timeout", *shutdownTO)

	// Graceful order: stop producers, detach the tap, then drain the
	// pipeline so every accepted event is folded before reporting. The
	// drain is bounded: if it exceeds -shutdown-timeout (e.g. a wedged
	// consumer), the daemon reports the failure and exits anyway rather
	// than hanging the supervisor.
	drainStart := time.Now()
	drained := make(chan struct{})
	go func() {
		<-attackers
		hp.SetTap(nil)
		switch {
		case cl != nil:
			// Sharded drain: wait for every shard to flush its routed
			// events, fold the final merged round, then stop.
			if err := cl.Quiesce(*shutdownTO / 2); err != nil {
				slog.Warn("cluster quiesce incomplete", "err", err)
			}
			if _, err := cl.Step(true); err != nil {
				slog.Warn("final cluster round failed", "err", err)
			}
			cl.Close()
		case node != nil:
			node.Close()
		default:
			pipe.Close()
		}
		close(drained)
	}()
	select {
	case <-drained:
		slog.Info("pipeline drained", "took", time.Since(drainStart).Round(time.Millisecond))
	case <-time.After(*shutdownTO):
		slog.Warn("pipeline drain timed out; exiting with events unflushed", "timeout", *shutdownTO)
	}

	if *snapshotPath != "" {
		<-snapWG
		if err := writeSnapshot(*snapshotPath, camp, deployedFn()); err != nil {
			slog.Warn("final snapshot failed", "err", err)
		} else {
			slog.Info("final snapshot written", "path", *snapshotPath)
		}
	}

	if cl != nil {
		cs := cl.Controller().Status()
		slog.Info("final cluster state", "leader", cs.Leader, "term", cs.Term,
			"epoch", cs.Epoch, "rounds", cs.Rounds, "deferred", cs.DeferredRounds,
			"discarded", cs.DiscardedRounds, "degraded", cs.Degraded,
			"converged", cs.Converged, "clusters", cs.NumClusters, "candidates", cs.Candidates)
	}
	if pipe == nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Warn("http server error", "err", err)
		}
		return
	}
	st := pipe.Status(5)
	slog.Info("final state", "events", st.TotalEvents, "rounds", st.Rounds,
		"reconfigs", st.Reconfigurations, "converged", st.Converged)
	if rep, err := pipe.Evidence(); err == nil && st.Rounds > 0 {
		const maxPrint = 10
		for i, c := range rep.Candidates {
			if i == maxPrint {
				slog.Info("more candidates elided; see /evidence", "remaining", len(rep.Candidates)-maxPrint)
				break
			}
			slog.Info("candidate", "asn", c.ASN, "mean_volume_share", c.MeanVolumeShare,
				"configs_with_traffic", c.ConfigsWithTraffic, "configs_observed", c.ConfigsObserved,
				"cluster_size", c.ClusterSize)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Warn("http server error", "err", err)
	}
}

// newLogger builds the daemon's slog logger at the requested level.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// faultsStatus is the /faults payload: injector stats (profile "none"
// when no fault profile is active), per-link circuit-breaker health, and
// the pipeline's degradation state.
type faultsStatus struct {
	Profile       string                   `json:"profile"`
	Seed          uint64                   `json:"seed,omitempty"`
	Injected      map[string]int64         `json:"injected,omitempty"`
	Links         []peering.LinkHealthStat `json:"links,omitempty"`
	Quarantined   []spooftrack.LinkID      `json:"quarantined,omitempty"`
	Degraded      bool                     `json:"degraded"`
	DroppedEvents int64                    `json:"dropped_events"`
}

// probeView bundles what /probe serves: the live prober and the
// propagation-derived catchment vector its channel audit is compared
// against.
type probeView struct {
	prober    *probe.Prober
	catchment []bgp.LinkID
}

// probeStatus is the /probe payload: the prober's scan status plus the
// agreement/conflict audit between the probe channel's measured ingress
// links and the propagation-derived catchment vector.
type probeStatus struct {
	probe.Status
	Audit probe.ChannelAudit `json:"audit"`
}

// clusterView is what /cluster serves in the sharded modes: the
// (in-process or external-controller) cluster status, and the cluster's
// own drop counter for /faults. Nil in single-node and shard-node
// modes without a local controller.
type clusterView struct {
	status  func() shard.ClusterStatus
	dropped func() int64
}

// newMux assembles the daemon's HTTP surface: pipeline introspection,
// metrics, the trace journal, the SLO watchdog (readiness and bundles),
// fault-injection state, and the standard pprof endpoints. dog may be
// nil (no watchdog: /readyz degrades to a pipeline-started check, /slo
// and /debug/bundle report 404); inj and health may be nil (no injector
// / no platform); pv may be nil (probing off: /probe reports 404); led
// may be nil (provenance off: /explain reports 404); db may be nil
// (history off: /query and /dash report 404); pipe may be nil in the
// sharded controller mode (/status and /evidence point at /cluster);
// cv may be nil (not sharded: /cluster reports 404).
func newMux(pipe *stream.Pipeline, reg *metrics.Registry, tr *trace.Tracer, dog *watch.Watchdog, inj *spooftrack.FaultInjector, health *peering.LinkHealth, pv *probeView, led *provenance.Ledger, db *tsdb.DB, cv *clusterView) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if pipe == nil {
			http.Error(w, "no local pipeline (sharded controller mode; see /cluster)", http.StatusNotFound)
			return
		}
		writeJSON(w, pipe.Status(10))
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		if cv == nil {
			http.Error(w, "not a sharded deployment (-shards / -controller)", http.StatusNotFound)
			return
		}
		writeJSON(w, cv.status())
	})
	mux.HandleFunc("/faults", func(w http.ResponseWriter, r *http.Request) {
		fs := faultsStatus{Profile: "none"}
		switch {
		case pipe != nil:
			fs.Degraded = pipe.Degraded()
			fs.DroppedEvents = pipe.Dropped()
		case cv != nil:
			fs.Degraded = cv.status().Degraded
			if cv.dropped != nil {
				fs.DroppedEvents = cv.dropped()
			}
		}
		if inj != nil {
			st := inj.Stats()
			fs.Profile, fs.Seed, fs.Injected = st.Profile, st.Seed, st.Counts
		}
		if health != nil {
			fs.Links = health.Snapshot()
			fs.Quarantined = health.Quarantined()
		}
		writeJSON(w, fs)
	})
	mux.HandleFunc("/probe", func(w http.ResponseWriter, r *http.Request) {
		if pv == nil {
			http.Error(w, "no prober configured (-probe-interval 0)", http.StatusNotFound)
			return
		}
		ps := probeStatus{Status: pv.prober.Status()}
		pv.prober.Inference(func(inf *probe.SAVInference) {
			ps.Audit = probe.Audit(probe.BuildChannel(inf, 0), pv.catchment)
		})
		writeJSON(w, ps)
	})
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/query", queryHandler(db))
	mux.HandleFunc("/dash", func(w http.ResponseWriter, r *http.Request) {
		if db == nil {
			http.Error(w, "no metric history (-scrape-interval 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = fmt.Fprint(w, dashHTML)
	})
	mux.HandleFunc("/evidence", func(w http.ResponseWriter, r *http.Request) {
		if pipe == nil {
			http.Error(w, "no local pipeline (sharded controller mode; see /cluster and /explain)", http.StatusNotFound)
			return
		}
		if pipe.Status(0).Rounds == 0 {
			http.Error(w, "no rounds folded yet: evidence would list every source as a candidate", http.StatusConflict)
			return
		}
		rep, err := pipe.Evidence()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	})
	// Decision provenance. /explain lists the recorded verdicts (or, with
	// ?format=ledger / ?format=dot, exports the full timeline or the
	// provenance graph); /explain/{cluster} renders the complete evidence
	// chain behind one cluster of the final verdict, with an embedded
	// replay check proving the chain reproduces it.
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		if !led.Enabled() {
			http.Error(w, "no provenance ledger (-ledger=false)", http.StatusNotFound)
			return
		}
		e := led.Export()
		switch format := r.URL.Query().Get("format"); format {
		case "":
			writeJSON(w, map[string]any{"events": len(e.Events), "verdicts": e.Verdicts()})
		case "ledger", "json":
			w.Header().Set("Content-Type", "application/json")
			_ = e.WriteJSON(w)
		case "dot":
			w.Header().Set("Content-Type", "text/vnd.graphviz")
			_ = e.WriteDOT(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want ledger, json, or dot)", format), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/explain/", func(w http.ResponseWriter, r *http.Request) {
		if !led.Enabled() {
			http.Error(w, "no provenance ledger (-ledger=false)", http.StatusNotFound)
			return
		}
		id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/explain/"))
		if err != nil {
			http.Error(w, "cluster id must be an integer: /explain/{cluster}", http.StatusBadRequest)
			return
		}
		ex, err := led.Export().Explain(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, ex)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="spooftrackd-trace.json"`)
			_ = tr.WriteChromeTrace(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = tr.WriteJSON(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want chrome or json)", format), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if dog == nil {
			http.Error(w, "no watchdog configured", http.StatusNotFound)
			return
		}
		writeJSON(w, dog.Status())
	})
	mux.HandleFunc("/debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		if dog == nil {
			http.Error(w, "no watchdog configured", http.StatusNotFound)
			return
		}
		path := dog.LastBundlePath()
		if path == "" {
			http.Error(w, "no diagnostic bundle captured yet", http.StatusNotFound)
			return
		}
		data, err := os.ReadFile(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Bundle-Path", path)
		_, _ = w.Write(data)
	})
	// Liveness is process-up only; readiness additionally requires the
	// pipeline to be running and no SLO rule in breach, so an orchestrator
	// pulls a degraded daemon out of rotation without restarting it.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if pipe == nil {
			// Sharded modes without a local pipeline: ready unless the
			// cluster has latched the degraded (data-loss) flag.
			if cv == nil {
				http.Error(w, "pipeline not started", http.StatusServiceUnavailable)
				return
			}
			if cs := cv.status(); cs.Degraded {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"ready":            false,
					"degraded":         true,
					"discarded_rounds": cs.DiscardedRounds,
				})
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		if dog != nil && !dog.Healthy() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"ready":    false,
				"breaches": dog.BreachingRules(),
			})
			return
		}
		// Overload shedding is a degraded state: the pipeline is up but
		// dropping events, so pull the daemon out of rotation until the
		// controller observes the queues drain.
		if pipe.Degraded() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"ready":          false,
				"degraded":       true,
				"dropped_events": pipe.Dropped(),
			})
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// startAttackers launches n demo attackers spoofing from randomly
// chosen source ASes and returns a channel closed when all have
// stopped. The returned channel is already closed when n <= 0.
func startAttackers(ctx context.Context, tracker *spooftrack.Tracker, borderAddr net.Addr, n, pps int) <-chan struct{} {
	done := make(chan struct{})
	if n <= 0 {
		close(done)
		return done
	}
	rng := spooftrack.NewRNG(tracker.World.Params.Seed ^ 0x5f)
	victim := netip.MustParseAddr("192.0.2.66")
	asns := tracker.SourceASNs()
	burst := pps / 20 // 50ms cadence
	if burst < 1 {
		burst = 1
	}
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			k := rng.Intn(len(asns))
			a, err := amp.NewAttacker(uint32(asns[k]), victim)
			if err != nil {
				slog.Warn("attacker failed", "err", err)
				continue
			}
			defer a.Close()
			slog.Info("demo attacker spoofing", "attacker", i+1, "asn", asns[k], "source", k)
			go func(a *amp.Attacker) {
				t := time.NewTicker(50 * time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						if _, err := a.Flood(borderAddr, burst, 8); err != nil {
							return
						}
					}
				}
			}(a)
		}
		<-ctx.Done()
	}()
	return done
}

// writeSnapshot atomically writes the dataset of the configurations the
// pipeline has deployed so far.
func writeSnapshot(path string, camp *spooftrack.Campaign, deployed []int) error {
	if len(deployed) == 0 {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := core.WriteDataset(f, camp.SubCampaign(deployed).Dataset()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
