package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/tsdb"
)

// queryBase is the fixed clock the /query fixtures scrape under, so the
// payloads (point timestamps included) are golden-stable.
var queryBase = time.Unix(1_700_000_000, 0)

// queryMux builds a mux whose only live surface is the metric history:
// a counter at 5/s, a two-child vector at 10/s and 30/s, and a latency
// histogram, scraped once per second for a minute.
func queryMux(t *testing.T) *http.ServeMux {
	t.Helper()
	reg := metrics.NewRegistry()
	ev := reg.Counter("events_total")
	cv := reg.CounterVec("link_packets_total", "link")
	h := reg.Histogram("flush_seconds", 0.01, 0.1, 1)
	db := tsdb.New(tsdb.Options{Registry: reg})
	for i := 0; i <= 60; i++ {
		ev.Add(5)
		cv.With("0").Add(10)
		cv.With("1").Add(30)
		h.Observe(0.05)
		db.ScrapeOnce(queryBase.Add(time.Duration(i) * time.Second))
	}
	return newMux(nil, reg, nil, nil, nil, nil, nil, nil, db, nil)
}

// rangeParams pins from/to to the fixture's scrape window (unix
// seconds), keeping responses independent of the wall clock.
func rangeParams() string {
	return fmt.Sprintf("from=%d&to=%d", queryBase.Unix(), queryBase.Add(60*time.Second).Unix())
}

func getQuery(t *testing.T, mux *http.ServeMux, path string) queryResult {
	t.Helper()
	res, body := get(t, mux, path)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d\n%s", path, res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s Content-Type = %q", path, ct)
	}
	var qr queryResult
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
	}
	return qr
}

func TestQueryEndpointNoDB(t *testing.T) {
	res, body := get(t, testMux(t), "/query?series=events_total")
	if res.StatusCode != http.StatusNotFound || !strings.Contains(body, "-scrape-interval") {
		t.Fatalf("query with no history: status %d body %q", res.StatusCode, body)
	}
	res, body = get(t, testMux(t), "/dash")
	if res.StatusCode != http.StatusNotFound || !strings.Contains(body, "-scrape-interval") {
		t.Fatalf("dash with no history: status %d body %q", res.StatusCode, body)
	}
}

func TestQueryRaw(t *testing.T) {
	mux := queryMux(t)
	qr := getQuery(t, mux, "/query?series=events_total&"+rangeParams())
	if len(qr.Series) != 1 || len(qr.Series[0].Points) != 61 {
		t.Fatalf("raw query: %d series, %d points", len(qr.Series), len(qr.Series[0].Points))
	}
	pts := qr.Series[0].Points
	if pts[0].V != 5 || pts[60].V != 305 {
		t.Fatalf("raw counter endpoints = %v .. %v, want 5 .. 305", pts[0].V, pts[60].V)
	}
	if qr.From != queryBase.UnixMilli() || pts[0].T != queryBase.UnixMilli() {
		t.Fatalf("range echo: from=%d first point=%d", qr.From, pts[0].T)
	}
}

func TestQueryRateGolden(t *testing.T) {
	mux := queryMux(t)
	path := "/query?series=events_total&func=rate&" + rangeParams()
	_, body := get(t, mux, path)
	qr := getQuery(t, mux, path)
	if len(qr.Series) != 1 || len(qr.Series[0].Points) != 60 {
		t.Fatalf("rate query: %+v", qr.Series)
	}
	for _, p := range qr.Series[0].Points {
		if p.V != 5 {
			t.Fatalf("steady 5/s counter: rate point %+v", p)
		}
	}
	goldenBody(t, "query_rate.golden", body)
}

func TestQueryVectorSumAndChild(t *testing.T) {
	mux := queryMux(t)
	// All children, rate: two series sorted by child key.
	qr := getQuery(t, mux, "/query?series=link_packets_total&func=rate&"+rangeParams())
	if len(qr.Series) != 2 || qr.Series[0].Child != "link=0" || qr.Series[1].Child != "link=1" {
		t.Fatalf("vector rate children = %+v", qr.Series)
	}
	if qr.Series[0].Points[0].V != 10 || qr.Series[1].Points[0].V != 30 {
		t.Fatalf("per-child rates = %v, %v, want 10, 30",
			qr.Series[0].Points[0].V, qr.Series[1].Points[0].V)
	}
	// Aggregated rate: sum collapses to one 40/s series.
	qr = getQuery(t, mux, "/query?series=link_packets_total&func=sum&rate=1&"+rangeParams())
	if len(qr.Series) != 1 || qr.Series[0].Points[0].V != 40 {
		t.Fatalf("sum rate = %+v, want one 40/s series", qr.Series)
	}
	// Child filter narrows to one series.
	qr = getQuery(t, mux, "/query?series=link_packets_total&child=link%3D1&"+rangeParams())
	if len(qr.Series) != 1 || qr.Series[0].Child != "link=1" {
		t.Fatalf("child filter = %+v", qr.Series)
	}
}

func TestQueryQuantile(t *testing.T) {
	qr := getQuery(t, queryMux(t), "/query?series=flush_seconds&func=quantile&q=0.5&"+rangeParams())
	if len(qr.Series) != 1 || qr.Series[0].Kind != "quantile" || len(qr.Series[0].Points) != 1 {
		t.Fatalf("quantile query = %+v", qr.Series)
	}
	// Every observation is 0.05, interpolated within the (0.01, 0.1]
	// bucket; the median must land inside it.
	if v := qr.Series[0].Points[0].V; v <= 0.01 || v > 0.1 {
		t.Fatalf("median = %v, want within (0.01, 0.1]", v)
	}
}

func TestQueryUnknownSeriesIsEmpty(t *testing.T) {
	qr := getQuery(t, queryMux(t), "/query?series=no_such_series&"+rangeParams())
	if qr.Series == nil || len(qr.Series) != 0 {
		t.Fatalf("unknown series = %+v, want empty (not null)", qr.Series)
	}
}

func TestQueryBadParams(t *testing.T) {
	mux := queryMux(t)
	for _, path := range []string{
		"/query",                                        // no series
		"/query?series=events_total&func=median",        // unknown func
		"/query?series=events_total&window=huge",        // bad window
		"/query?series=events_total&from=soon",          // bad time
		"/query?series=events_total&from=9&to=1",        // inverted range
		"/query?series=flush_seconds&func=quantile&q=2", // quantile out of range
	} {
		if res, body := get(t, mux, path); res.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400\n%s", path, res.StatusCode, body)
		}
	}
}

func TestDashServesSelfContainedPage(t *testing.T) {
	res, body := get(t, queryMux(t), "/dash")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("dash: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dash Content-Type = %q", ct)
	}
	for _, want := range []string{"<canvas", "/query?series=", "stream_events_total", "setInterval"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dash page missing %q", want)
		}
	}
	// Self-contained: no external scripts, stylesheets, or images.
	for _, forbid := range []string{"src=\"http", "href=\"http", "<link", "<img"} {
		if strings.Contains(body, forbid) {
			t.Fatalf("dash page references an external asset (%q)", forbid)
		}
	}
}

func TestRuntimeGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	registerRuntimeGauges(reg)
	snap := reg.Snapshot()
	if g, ok := snap["go_goroutines"].(float64); !ok || g < 1 {
		t.Fatalf("go_goroutines = %v", snap["go_goroutines"])
	}
	if g, ok := snap["go_heap_alloc_bytes"].(float64); !ok || g <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v", snap["go_heap_alloc_bytes"])
	}
	if _, ok := snap["go_gc_pause_seconds_total"].(float64); !ok {
		t.Fatalf("go_gc_pause_seconds_total = %v", snap["go_gc_pause_seconds_total"])
	}
}
