package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
)

// testLedger builds a deterministic synthetic run (fixed clock, fixed
// events) so the /explain payloads can be golden-filed: two configs
// over three sources, a retry and a degrade, a quarantine flap, one
// probe verdict, and a campaign verdict the rows reproduce.
func testLedger() *provenance.Ledger {
	n := 0
	base := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	led := provenance.New(provenance.Options{Clock: func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}})
	led.RecordMeta(provenance.MetaEvent{Component: "campaign", NumSources: 3, NumConfigs: 2, NumLinks: 2, UseTruth: true})
	led.RecordRetry(provenance.RetryEvent{Config: 0, Phase: "deploy", Attempt: 1, Error: "mux flap"})
	led.RecordDeploy(provenance.DeployEvent{Config: 0, Key: "k0", Attempts: 2, Phase: "isolation"})
	led.RecordRow(provenance.RowEvent{Config: 0, Catchment: []bgp.LinkID{0, 0, 1}})
	led.RecordDegrade(provenance.DegradeEvent{Config: 1, Phase: "measure", Error: "gone"})
	led.RecordRow(provenance.RowEvent{Config: 1, Catchment: []bgp.LinkID{-1, -1, -1}, Incomplete: true})
	led.RecordQuarantine(provenance.QuarantineEvent{Link: 1, From: "closed", To: "open"})
	led.RecordProbe(provenance.ProbeEvent{AS: 7, Source: 2, Link: 1, Signal: "can_spoof", Confidence: 0.97, Round: 1})
	led.RecordVerdict(provenance.VerdictEvent{Origin: "campaign", Assign: []int32{0, 0, 1}, Clusters: 2})
	return led
}

// explainMux is a mux with only the provenance surface live.
func explainMux(led *provenance.Ledger) *http.ServeMux {
	return newMux(nil, metrics.NewRegistry(), nil, nil, nil, nil, nil, led, nil, nil)
}

// goldenBody compares body against testdata/<name>, rewriting the file
// when UPDATE_GOLDEN is set.
func goldenBody(t *testing.T, name, body string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if body != string(want) {
		t.Fatalf("%s differs from golden:\n--- got ---\n%s\n--- want ---\n%s", name, body, want)
	}
}

func TestExplainDisabled(t *testing.T) {
	mux := explainMux(nil)
	for _, path := range []string{"/explain", "/explain/0"} {
		res, body := get(t, mux, path)
		if res.StatusCode != http.StatusNotFound || !strings.Contains(body, "-ledger=false") {
			t.Fatalf("%s with nil ledger: status %d body %q", path, res.StatusCode, body)
		}
	}
}

func TestExplainList(t *testing.T) {
	mux := explainMux(testLedger())
	res, body := get(t, mux, "/explain")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/explain: status %d body %q", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/explain content type %q", ct)
	}
	var payload struct {
		Events   int                         `json:"events"`
		Verdicts []provenance.VerdictSummary `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Events != 9 || len(payload.Verdicts) != 1 || !payload.Verdicts[0].Final {
		t.Fatalf("/explain payload = %+v", payload)
	}
	goldenBody(t, "explain_list.golden", body)
}

func TestExplainFormats(t *testing.T) {
	mux := explainMux(testLedger())

	res, body := get(t, mux, "/explain?format=dot")
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(body, "digraph provenance") {
		t.Fatalf("dot format: status %d body %.60q", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Fatalf("dot content type %q", ct)
	}

	res, body = get(t, mux, "/explain?format=ledger")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ledger format: status %d", res.StatusCode)
	}
	exp, err := provenance.ParseExport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ledger format is not a parseable export: %v", err)
	}
	if len(exp.Events) != 9 {
		t.Fatalf("ledger format exported %d events, want 9", len(exp.Events))
	}

	res, body = get(t, mux, "/explain?format=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d body %q", res.StatusCode, body)
	}
}

func TestExplainCluster(t *testing.T) {
	mux := explainMux(testLedger())
	res, body := get(t, mux, "/explain/0")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/explain/0: status %d body %q", res.StatusCode, body)
	}
	var ex provenance.Explanation
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	// The chain's leaves must account for every configuration that ran
	// and every probe round that contributed evidence.
	if len(ex.Configs) != 2 {
		t.Fatalf("chain covers %d configs, want 2: %+v", len(ex.Configs), ex.Configs)
	}
	if len(ex.Probes) != 1 || ex.Probes[0].Round != 1 {
		t.Fatalf("chain probes = %+v", ex.Probes)
	}
	if !ex.Replay.Reproduced {
		t.Fatalf("embedded replay check failed: %+v", ex.Replay)
	}
	goldenBody(t, "explain_cluster0.golden", body)
}

func TestExplainClusterErrors(t *testing.T) {
	mux := explainMux(testLedger())
	if res, _ := get(t, mux, "/explain/banana"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("/explain/banana: status %d", res.StatusCode)
	}
	if res, _ := get(t, mux, "/explain/99"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("/explain/99: status %d", res.StatusCode)
	}
}
