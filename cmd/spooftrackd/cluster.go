package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spooftrack"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/shard"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
	"spooftrack/internal/tsdb"
)

// controllerArgs is everything the controller mode needs from main:
// the shared attribution contract, the shard fleet, and the lease that
// fences failover between controller replicas.
type controllerArgs struct {
	listen    string
	id        string
	peers     string
	leaseFile string
	attr      stream.Attribution
	eval      stream.EvalParams
	minRound  int64
	interval  time.Duration
	tracker   *spooftrack.Tracker
	reg       *metrics.Registry
	tracer    *trace.Tracer
	led       *provenance.Ledger
	db        *tsdb.DB
}

// runController is the -controller mode: no packet plane, no local
// pipeline — this process collects every shard's per-link counters over
// HTTP, merges them, folds the merged round through the shared
// evaluator, and broadcasts catchment epochs back. Leadership is held
// through the lease (-lease-file shares it across replicas, so a
// standby controller process takes over on expiry), and every RPC is
// fenced by the lease term.
func runController(ctx context.Context, a controllerArgs) {
	ids, tr, err := parseShardPeers(a.peers)
	if err != nil {
		slog.Error("bad -controller spec", "err", err)
		os.Exit(2)
	}
	var lease shard.LeaseStore
	if a.leaseFile != "" {
		fl := shard.NewFileLease(a.leaseFile)
		if err := fl.Dir(); err != nil {
			slog.Error("lease file unusable", "path", a.leaseFile, "err", err)
			os.Exit(1)
		}
		lease = fl
	} else {
		slog.Warn("in-memory lease: no cross-process failover (set -lease-file)")
		lease = shard.NewMemLease()
	}
	if a.id == "" {
		a.id = "ctrl-" + strconv.Itoa(os.Getpid())
	}
	platform := a.tracker.World.Platform
	ct, err := shard.NewController(shard.ControllerConfig{
		ID:              a.id,
		Attr:            a.attr,
		Eval:            a.eval,
		MinRoundPackets: a.minRound,
		Members:         ids,
		Transport:       tr,
		Lease:           lease,
		EvalInterval:    a.interval,
		Blocked: func() []bool {
			return sched.QuarantineMask(a.tracker.Plan, platform.Health().IsQuarantined)
		},
		Ledger:  a.led,
		Metrics: a.reg,
	})
	if err != nil {
		slog.Error("controller failed", "err", err)
		os.Exit(1)
	}
	ct.Start()
	slog.Info("running as sharded-ingest controller", "id", a.id, "shards", ids,
		"lease", a.leaseFile, "interval", a.interval)

	cv := &clusterView{status: ct.Status}
	mux := newMux(nil, a.reg, a.tracer, nil, a.tracker.Fault, platform.Health(), nil, a.led, a.db, cv)
	srv := &http.Server{Addr: a.listen, Handler: mux}
	httpErr := make(chan error, 1)
	go func() {
		slog.Info("http listening", "addr", a.listen,
			"endpoints", "/cluster /faults /metrics /query /dash /explain /trace /debug/pprof/ /healthz /readyz")
		httpErr <- srv.ListenAndServe()
	}()

	<-ctx.Done()
	// Fold whatever the shards still hold, then release the lease so a
	// replacement elects immediately instead of waiting out the TTL.
	if ct.Leading() {
		if _, err := ct.Step(true); err != nil && !errors.Is(err, shard.ErrNotLeader) {
			slog.Warn("final controller round failed", "err", err)
		}
	}
	ct.Stop()
	cs := ct.Status()
	slog.Info("final cluster state", "leader", cs.Leader, "term", cs.Term,
		"epoch", cs.Epoch, "rounds", cs.Rounds, "deferred", cs.DeferredRounds,
		"discarded", cs.DiscardedRounds, "degraded", cs.Degraded,
		"converged", cs.Converged, "clusters", cs.NumClusters, "candidates", cs.Candidates)

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Warn("http server error", "err", err)
	}
}

// parseShardPeers parses the -controller spec: comma-separated
// id=http://host:port pairs, returning the sorted-insensitive id list
// and a registered HTTP transport.
func parseShardPeers(spec string) ([]string, *shard.HTTPTransport, error) {
	tr := shard.NewHTTPTransport(0)
	var ids []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, baseURL, ok := strings.Cut(part, "=")
		if !ok || id == "" || baseURL == "" {
			return nil, nil, fmt.Errorf("want id=http://host:port, got %q", part)
		}
		tr.Register(id, baseURL)
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no shards in %q", spec)
	}
	return ids, tr, nil
}

// loadTopo reads a -topo-file graph (CAIDA serialization).
func loadTopo(path string) (*topo.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topo.ReadCAIDA(f)
}

// saveTopo writes the built topology for -topo-write (temp-and-rename
// so a concurrently starting process never reads a partial file).
func saveTopo(path string, g *topo.Graph) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".topo-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := topo.WriteCAIDA(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
