package main

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/tsdb"
)

// registerRuntimeGauges exposes the Go runtime's health as computed
// gauges, read at scrape time: goroutine count, live heap, and
// cumulative GC pause time (a counter-shaped gauge — rate() it for
// pause seconds per second). ReadMemStats stops the world briefly, but
// at scrape cadence (~1 Hz) the cost is noise.
func registerRuntimeGauges(reg *metrics.Registry) {
	reg.GaugeFunc("go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("go_heap_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("go_gc_pause_seconds_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}

// queryResult is the /query payload: the resolved time range (unix
// milliseconds, matching the point timestamps) and the matched series.
type queryResult struct {
	From   int64             `json:"from"`
	To     int64             `json:"to"`
	Series []tsdb.SeriesData `json:"series"`
}

// parseQueryTime accepts unix seconds (integer or fractional) or
// RFC3339.
func parseQueryTime(s string) (time.Time, error) {
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		return time.UnixMilli(int64(sec * 1000)), nil
	}
	return time.Parse(time.RFC3339, s)
}

// queryHandler serves range queries over the embedded metric history:
//
//	/query?series=<family>[&child=k=v][&from=..][&to=..][&window=5m]
//	      [&func=raw|rate|sum|max|quantile][&q=0.99][&rate=1]
//
// from/to are unix seconds or RFC3339; to defaults to now and from to
// to−window (window defaults to 15m). func=rate plots the per-second,
// counter-reset-aware derivative; sum/max collapse a vector's children
// (combine with rate=1 for an aggregated rate); quantile computes a
// quantile-over-time on a histogram family. Unknown families answer
// with an empty series list, not an error.
func queryHandler(db *tsdb.DB) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if db == nil {
			http.Error(w, "no metric history (-scrape-interval 0)", http.StatusNotFound)
			return
		}
		qs := r.URL.Query()
		q := tsdb.Query{Series: qs.Get("series"), Child: qs.Get("child")}
		if q.Series == "" {
			http.Error(w, "missing series parameter", http.StatusBadRequest)
			return
		}
		window := 15 * time.Minute
		if ws := qs.Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad window %q: want a positive Go duration", ws), http.StatusBadRequest)
				return
			}
			window = d
		}
		to := time.Now()
		if ts := qs.Get("to"); ts != "" {
			t, err := parseQueryTime(ts)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad to %q: want unix seconds or RFC3339", ts), http.StatusBadRequest)
				return
			}
			to = t
		}
		from := to.Add(-window)
		if fs := qs.Get("from"); fs != "" {
			t, err := parseQueryTime(fs)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad from %q: want unix seconds or RFC3339", fs), http.StatusBadRequest)
				return
			}
			from = t
		}
		if !from.Before(to) {
			http.Error(w, "from must precede to", http.StatusBadRequest)
			return
		}
		switch fn := qs.Get("func"); fn {
		case "", "raw":
		case "rate":
			q.Rate = true
		case "sum", "max":
			q.Agg = fn
		case "quantile":
			q.Quantile = 0.99
			if s := qs.Get("q"); s != "" {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil || v <= 0 || v >= 1 {
					http.Error(w, fmt.Sprintf("bad q %q: want a quantile in (0,1)", s), http.StatusBadRequest)
					return
				}
				q.Quantile = v
			}
		default:
			http.Error(w, fmt.Sprintf("unknown func %q (want raw, rate, sum, max, or quantile)", fn), http.StatusBadRequest)
			return
		}
		if qs.Get("rate") == "1" {
			q.Rate = true
		}
		q.From, q.To = from, to
		series := db.Query(q)
		if series == nil {
			series = []tsdb.SeriesData{}
		}
		writeJSON(w, queryResult{From: from.UnixMilli(), To: to.UnixMilli(), Series: series})
	}
}

// dashHTML is the /dash page: a self-contained live dashboard (inline
// CSS and JS, no external assets) drawing canvas sparklines from /query
// polls. Panels whose query yields a full range (rates, gauges) draw
// the server-side history; single-value panels (quantile-over-time,
// derived ratios) accumulate a client-side ring across polls.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>spooftrackd</title>
<style>
  body { background: #111418; color: #d7dce1; font: 13px/1.4 ui-monospace, Menlo, Consolas, monospace; margin: 24px; }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: #7a828c; margin-bottom: 20px; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(320px, 1fr)); gap: 16px; }
  .panel { background: #1a1f26; border: 1px solid #2a313b; border-radius: 6px; padding: 12px 14px; }
  .panel h2 { font-size: 12px; font-weight: 500; color: #9aa3ad; margin: 0 0 6px; text-transform: uppercase; letter-spacing: .05em; }
  .val { font-size: 22px; margin-bottom: 6px; min-height: 28px; }
  .val.bad { color: #ff6b6b; }
  .val.ok { color: #69db7c; }
  canvas { width: 100%; height: 48px; display: block; }
  .err { color: #ff6b6b; }
</style>
</head>
<body>
<h1>spooftrackd live dashboard</h1>
<div class="sub">metric history via <code>/query</code> &middot; refreshes every 2s</div>
<div class="grid" id="grid"></div>
<script>
"use strict";
const fmtSI = v => {
  if (!isFinite(v)) return "–";
  const a = Math.abs(v);
  if (a >= 1e9) return (v/1e9).toFixed(2)+"G";
  if (a >= 1e6) return (v/1e6).toFixed(2)+"M";
  if (a >= 1e3) return (v/1e3).toFixed(2)+"k";
  if (a >= 1 || a === 0) return v.toFixed(2);
  if (a >= 1e-3) return (v*1e3).toFixed(2)+"m";
  return (v*1e6).toFixed(2)+"µ";
};

// zip joins children of one family by timestamp and maps the values.
const zip = (series, f) => {
  const by = new Map();
  for (const s of series) for (const p of s.points) {
    if (!by.has(p.t)) by.set(p.t, {});
    by.get(p.t)[s.child || ""] = p.v;
  }
  const out = [];
  for (const [t, vals] of [...by.entries()].sort((a, b) => a[0]-b[0])) {
    const v = f(vals);
    if (v !== null && isFinite(v)) out.push({t, v});
  }
  return out;
};

// Panels: url is the /query request; points(resp) yields the sparkline
// series; ring panels instead poll one value and keep local history.
const PANELS = [
  { title: "events / s", url: "/query?series=stream_events_total&func=rate&window=10m",
    points: r => r.series.length ? r.series[0].points : [] },
  { title: "flush lag p99 (s)", url: "/query?series=stream_flush_lag_seconds&func=quantile&q=0.99&window=5m",
    ring: true, points: r => r.series.length ? r.series[0].points : [] },
  { title: "cache hit ratio", url: "/query?series=bgp_outcome_cache_requests_total&func=rate&window=10m",
    points: r => zip(r.series, v => {
      const h = v["result=hit"] || 0, m = v["result=miss"] || 0;
      return h + m > 0 ? h / (h + m) : null;
    }) },
  { title: "probe coverage", url: "/query?series=probe_coverage&window=10m",
    points: r => r.series.length ? r.series[0].points : [] },
  { title: "degraded", url: "/query?series=stream_degraded&window=10m",
    points: r => r.series.length ? r.series[0].points : [],
    text: v => v > 0 ? "SHEDDING" : "ok", cls: v => v > 0 ? "bad" : "ok" },
];

const grid = document.getElementById("grid");
for (const p of PANELS) {
  const el = document.createElement("div");
  el.className = "panel";
  el.innerHTML = "<h2></h2><div class=val>–</div><canvas></canvas>";
  el.querySelector("h2").textContent = p.title;
  grid.appendChild(el);
  p.valEl = el.querySelector(".val");
  p.canvas = el.querySelector("canvas");
  p.hist = [];
}

function draw(canvas, pts) {
  const w = canvas.width = canvas.clientWidth * devicePixelRatio;
  const h = canvas.height = canvas.clientHeight * devicePixelRatio;
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, w, h);
  if (pts.length < 2) return;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { lo = Math.min(lo, p.v); hi = Math.max(hi, p.v); }
  if (hi === lo) { hi += 1; lo -= 1; }
  const t0 = pts[0].t, t1 = pts[pts.length-1].t || t0 + 1;
  ctx.beginPath();
  pts.forEach((p, i) => {
    const x = (p.t - t0) / (t1 - t0 || 1) * (w - 2) + 1;
    const y = h - 3 - (p.v - lo) / (hi - lo) * (h - 6);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.strokeStyle = "#4dabf7";
  ctx.lineWidth = 1.5 * devicePixelRatio;
  ctx.stroke();
}

async function tick() {
  for (const p of PANELS) {
    try {
      const r = await (await fetch(p.url)).json();
      let pts = p.points(r);
      if (p.ring) {
        // Single-value query: accumulate a client-side ring.
        if (pts.length) p.hist.push(pts[pts.length-1]);
        if (p.hist.length > 150) p.hist.shift();
        pts = p.hist;
      }
      const last = pts.length ? pts[pts.length-1].v : NaN;
      p.valEl.textContent = isFinite(last) ? (p.text ? p.text(last) : fmtSI(last)) : "no data";
      p.valEl.className = "val " + (p.cls && isFinite(last) ? p.cls(last) : "");
      draw(p.canvas, pts);
    } catch (e) {
      p.valEl.textContent = "error";
      p.valEl.className = "val err";
    }
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
