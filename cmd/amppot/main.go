// Command amppot runs the packet-level amplification pipeline on
// loopback: an AmpPot-style honeypot, a border router with a catchment
// table, a victim listener, and a set of spoofing attackers. It prints
// the per-ingress-link volume accounting the paper's technique consumes.
//
// Usage:
//
//	amppot -attackers 3 -packets 200
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sort"
	"time"

	"spooftrack/internal/amp"
)

func main() {
	var (
		nAttackers = flag.Int("attackers", 3, "number of attacking ASes")
		packets    = flag.Int("packets", 200, "requests per attacker")
		payload    = flag.Int("payload", 8, "request payload bytes")
		ampFactor  = flag.Int("amp", 20, "amplification factor")
		rate       = flag.Int("rate", 10, "max reflected responses per victim per second")
	)
	flag.Parse()

	victimAddr := netip.MustParseAddr("192.0.2.99")
	victimConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer victimConn.Close()
	victimUDP := victimConn.LocalAddr().(*net.UDPAddr)
	var victimBytes int64
	go func() {
		buf := make([]byte, 2048)
		for {
			n, _, err := victimConn.ReadFrom(buf)
			if err != nil {
				return
			}
			victimBytes += int64(n)
		}
	}()

	cfg := amp.HoneypotConfig{
		AmpFactor:                   *ampFactor,
		MaxResponsesPerVictimPerSec: *rate,
		Reflect: func(v netip.Addr) *net.UDPAddr {
			if v == victimAddr {
				return victimUDP
			}
			return nil
		},
	}
	hp, err := amp.NewHoneypot("127.0.0.1:0", cfg)
	if err != nil {
		fatal(err)
	}
	defer hp.Close()

	// Catchment table: attacker AS 100+i enters on link i mod 3.
	table := map[uint32]uint8{}
	for i := 0; i < *nAttackers; i++ {
		table[uint32(100+i)] = uint8(i % 3)
	}
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), table)
	if err != nil {
		fatal(err)
	}
	defer border.Close()

	fmt.Printf("honeypot %v, border %v, victim %v\n", hp.Addr(), border.Addr(), victimUDP)
	for i := 0; i < *nAttackers; i++ {
		a, err := amp.NewAttacker(uint32(100+i), victimAddr)
		if err != nil {
			fatal(err)
		}
		sent, err := a.Flood(border.Addr(), *packets, *payload)
		a.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("attacker AS%d sent %d spoofed requests\n", 100+i, sent)
	}

	// Let the pipeline drain.
	deadline := time.Now().Add(3 * time.Second)
	want := int64(*nAttackers * *packets)
	for time.Now().Before(deadline) {
		total := int64(0)
		for _, s := range hp.VolumeByLink() {
			total += s.Packets
		}
		if total >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("\nhoneypot per-ingress-link accounting:\n")
	vols := hp.VolumeByLink()
	var links []int
	for l := range vols {
		links = append(links, int(l))
	}
	sort.Ints(links)
	for _, l := range links {
		s := vols[uint8(l)]
		fmt.Printf("  link %d: %d packets, %d bytes\n", l, s.Packets, s.Bytes)
	}
	fmt.Printf("reflected responses: %d (rate-limited at %d/victim/s)\n", hp.Reflected(), *rate)
	fmt.Printf("victim received %d bytes of amplified traffic\n", victimBytes)
	fmt.Printf("malformed packets dropped: %d\n", hp.Malformed())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "amppot: %v\n", err)
	os.Exit(1)
}
