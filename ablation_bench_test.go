package spooftrack

// Ablation benchmarks: quantify the design choices DESIGN.md calls out
// by re-running reduced campaigns with one knob flipped. Each bench
// reports the resulting mean cluster size (and study-specific metrics)
// so the effect of the knob is visible next to its cost.
//
//	BenchmarkAblationTruthVsMeasured   measurement pipeline on/off
//	BenchmarkAblationPolicyNoise       Gao-Rexford deviations on/off
//	BenchmarkAblationTier1Filter       poisoning route-leak filter on/off
//	BenchmarkAblationPrependDepth      prepend x1 vs the paper's x4
//	BenchmarkAblationWireFeeds         MRT wire codec on the feed path
//	BenchmarkExtPrediction             catchment prediction accuracy
//	BenchmarkExtTargetedPoison         targeted poisoning of large clusters
//	BenchmarkExtLocalizationSpeed      time-to-target with concurrency

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/core"
	"spooftrack/internal/experiments"
	"spooftrack/internal/sched"
	"spooftrack/internal/topo"
)

// ablationWorldParams is the reduced scale used per bench iteration.
func ablationWorldParams(seed uint64) core.WorldParams {
	p := core.DefaultWorldParams(seed)
	tp := topo.DefaultGenParams(seed)
	tp.NumASes = 1200
	p.Topo = &tp
	p.NumCollectors = 100
	p.NumProbes = 400
	p.MaxPoisonTargets = 40
	return p
}

// runAblation builds a world with the given params, runs the default
// plan, and returns the final mean cluster size.
func runAblation(b *testing.B, p core.WorldParams, opts core.CampaignOptions, mutatePlan func([]sched.PlannedConfig) []sched.PlannedConfig) float64 {
	b.Helper()
	w, err := core.BuildWorld(p)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := w.DefaultPlan()
	if err != nil {
		b.Fatal(err)
	}
	if mutatePlan != nil {
		plan = mutatePlan(plan)
	}
	camp, err := w.RunCampaign(plan, opts)
	if err != nil {
		b.Fatal(err)
	}
	return camp.FinalPartition().Summarize().MeanSize
}

func BenchmarkAblationTruthVsMeasured(b *testing.B) {
	var truth, measured float64
	for i := 0; i < b.N; i++ {
		p := ablationWorldParams(100)
		truth = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
		measured = runAblation(b, p, core.CampaignOptions{}, nil)
	}
	b.ReportMetric(truth, "mean-truth")
	b.ReportMetric(measured, "mean-measured")
}

func BenchmarkAblationPolicyNoise(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		p := ablationWorldParams(101)
		with = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
		clean := bgp.DefaultParams(101)
		clean.PolicyNoiseFrac = 0
		clean.LengthBlindFrac = 0
		p.Engine = &clean
		without = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
	}
	b.ReportMetric(with, "mean-noisy")
	b.ReportMetric(without, "mean-textbook")
}

func BenchmarkAblationTier1Filter(b *testing.B) {
	var filtered, unfiltered float64
	for i := 0; i < b.N; i++ {
		p := ablationWorldParams(102)
		filtered = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
		open := bgp.DefaultParams(102)
		open.Tier1PoisonFilter = false
		open.IgnorePoisonFrac = 0
		p.Engine = &open
		unfiltered = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
	}
	b.ReportMetric(filtered, "mean-filtered")
	b.ReportMetric(unfiltered, "mean-poison-fully-effective")
}

func BenchmarkAblationPrependDepth(b *testing.B) {
	shallow := func(plan []sched.PlannedConfig) []sched.PlannedConfig {
		out := make([]sched.PlannedConfig, len(plan))
		for i, pc := range plan {
			anns := make([]bgp.Announcement, len(pc.Config.Anns))
			copy(anns, pc.Config.Anns)
			for k := range anns {
				if anns[k].Prepend > 0 {
					anns[k].Prepend = 1
				}
			}
			out[i] = sched.PlannedConfig{Config: bgp.Config{Anns: anns}, Phase: pc.Phase}
		}
		return out
	}
	var deep, x1 float64
	for i := 0; i < b.N; i++ {
		p := ablationWorldParams(103)
		deep = runAblation(b, p, core.CampaignOptions{UseTruth: true}, nil)
		x1 = runAblation(b, p, core.CampaignOptions{UseTruth: true}, shallow)
	}
	b.ReportMetric(deep, "mean-prepend-x4")
	b.ReportMetric(x1, "mean-prepend-x1")
}

func BenchmarkAblationWireFeeds(b *testing.B) {
	var direct, wire float64
	for i := 0; i < b.N; i++ {
		p := ablationWorldParams(104)
		direct = runAblation(b, p, core.CampaignOptions{}, nil)
		p.WireFeeds = true
		wire = runAblation(b, p, core.CampaignOptions{}, nil)
	}
	b.ReportMetric(direct, "mean-direct")
	b.ReportMetric(wire, "mean-mrt-roundtrip")
}

func BenchmarkExtPrediction(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.ExtPredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ExtPrediction(lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean*100, "prediction-agreement-%")
}

func BenchmarkExtTargetedPoison(b *testing.B) {
	// The targeted phase mutates platform state, so it gets its own lab
	// per iteration rather than the shared one.
	var res *experiments.ExtTargetedPoisonResult
	for i := 0; i < b.N; i++ {
		lab, err := experiments.NewLab(experiments.LabParams{
			Seed: 105, NumASes: 1200, NumProbes: 400, NumCollectors: 100, MaxPoisonTargets: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err = experiments.ExtTargetedPoison(lab, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BeforeMean, "mean-before")
	b.ReportMetric(res.AfterMean, "mean-after")
	b.ReportMetric(float64(res.ExtraConfigs), "extra-configs")
}

func BenchmarkExtRemediation(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.ExtRemediationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ExtRemediation(lab, 0.5, 100, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Steps)), "rounds-to-clean")
	b.ReportMetric(float64(res.TotalNotified), "networks-notified")
}

func BenchmarkExtLocalizationSpeed(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.ExtSpeedResult
	for i := 0; i < b.N; i++ {
		res = experiments.ExtSpeed(lab, 5.0, 42)
	}
	b.ReportMetric(float64(res.ConfigsGreedy), "greedy-configs-to-5ASes")
	b.ReportMetric(res.Times[1].Hours(), "hours-1-prefix")
	b.ReportMetric(res.Times[4].Hours(), "hours-4-prefixes")
}
