// Package spooftrack is an open-source implementation of the
// control-plane traceback technique from "Tracking Down Sources of
// Spoofed IP Packets" (Fonseca et al., IFIP Networking 2020 / CoNEXT
// 2019): a network with multiple peering links systematically varies its
// BGP announcement configurations — anycast location subsets, AS-path
// prepending, and BGP poisoning — to manipulate which peering link each
// remote network's traffic arrives on, and correlates per-link spoofed
// traffic volumes across configurations to localize the networks
// originating spoofed packets.
//
// Because the technique requires announcement control over real peering
// links, the package ships a complete simulated substrate: a synthetic
// AS-level Internet, a Gao-Rexford policy-routing engine with anycast /
// prepending / poisoning semantics, a PEERING-platform origin model, BGP
// collectors and traceroute probes with realistic noise, and an
// AmpPot-style amplification honeypot. The same library code would drive
// a real deployment; only the substrate bindings differ.
//
// Basic usage:
//
//	tr, err := spooftrack.NewTracker(spooftrack.DefaultTrackerParams(42))
//	...
//	report := tr.LocalizeAttack(volumes) // per-config, per-link volumes
//
// See examples/ for runnable scenarios and DESIGN.md for the system
// inventory.
package spooftrack

import (
	"context"
	"fmt"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/core"
	"spooftrack/internal/fault"
	"spooftrack/internal/metrics"
	"spooftrack/internal/peering"
	"spooftrack/internal/provenance"
	"spooftrack/internal/report"
	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// Re-exported core types. The internal packages carry the
// implementation; these aliases form the supported public API.
type (
	// ASN is an autonomous system number.
	ASN = topo.ASN
	// Graph is an AS-level topology.
	Graph = topo.Graph
	// GenParams configures the synthetic Internet generator.
	GenParams = topo.GenParams
	// LinkID identifies one of the origin's peering links.
	LinkID = bgp.LinkID
	// Announcement is a per-link prefix announcement.
	Announcement = bgp.Announcement
	// Config is an announcement configuration ⟨A; P; Q⟩.
	Config = bgp.Config
	// Outcome is a converged routing state.
	Outcome = bgp.Outcome
	// WorldParams sizes the simulated world.
	WorldParams = core.WorldParams
	// World is the simulated environment.
	World = core.World
	// Campaign is a deployed and measured announcement campaign.
	Campaign = core.Campaign
	// CampaignOptions tunes campaign execution.
	CampaignOptions = core.CampaignOptions
	// PlannedConfig is one configuration with its generating phase.
	PlannedConfig = sched.PlannedConfig
	// Phase identifies the generating technique of a configuration.
	Phase = sched.Phase
	// Partition is a cluster partition of the sources.
	Partition = cluster.Partition
	// Metrics summarizes a partition.
	Metrics = cluster.Metrics
	// Placement is a spoofed-traffic source placement.
	Placement = spoof.Placement
	// MuxSpec names a PoP and its transit provider.
	MuxSpec = peering.MuxSpec
	// RNG is the deterministic random number generator used throughout.
	RNG = stats.RNG
	// EvidenceReport documents per-candidate localization evidence for
	// operator notification (§I).
	EvidenceReport = report.Report
	// RetryPolicy governs per-configuration retry and backoff during
	// campaign deployment and measurement.
	RetryPolicy = core.RetryPolicy
	// FaultProfile is a named fault-injection scenario.
	FaultProfile = fault.Profile
	// FaultInjector is the deterministic, seed-driven fault injector.
	FaultInjector = fault.Injector
	// ProvenanceLedger is the append-only decision-provenance ledger:
	// it records every input that shaped a localization verdict and
	// replays verdicts deterministically (internal/provenance).
	ProvenanceLedger = provenance.Ledger
)

// NewProvenanceLedger returns an enabled decision-provenance ledger.
// Pass it through TrackerParams.Ledger and stream.Config.Ledger; keep a
// nil *ProvenanceLedger to run with provenance off at ≈zero cost.
func NewProvenanceLedger() *ProvenanceLedger {
	return provenance.New(provenance.Options{})
}

// Phase constants.
const (
	PhaseLocations  = sched.PhaseLocations
	PhasePrepending = sched.PhasePrepending
	PhasePoisoning  = sched.PhasePoisoning
)

// NoLink marks ASes without a route.
const NoLink = bgp.NoLink

// PEERINGASN is the origin AS number used by the platform model.
const PEERINGASN = peering.PEERINGASN

// TableI lists the seven PoPs the paper's experiments used.
var TableI = peering.TableI

// DefaultWorldParams returns a paper-scale world configuration.
func DefaultWorldParams(seed uint64) WorldParams { return core.DefaultWorldParams(seed) }

// BuildWorld constructs a simulated world.
func BuildWorld(p WorldParams) (*World, error) { return core.BuildWorld(p) }

// GenerateTopology builds a synthetic AS-level Internet.
func GenerateTopology(p GenParams) (*Graph, error) { return topo.Generate(p) }

// DefaultGenParams returns default topology generator parameters.
func DefaultGenParams(seed uint64) GenParams { return topo.DefaultGenParams(seed) }

// DefaultRetryPolicy returns the retry/backoff defaults used when a
// fault profile is active.
func DefaultRetryPolicy() RetryPolicy { return core.DefaultRetryPolicy() }

// FaultProfileNames lists the built-in fault scenario names.
func FaultProfileNames() []string { return fault.Names() }

// NewRNG returns a deterministic generator for the seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// TrackerParams configures a Tracker.
type TrackerParams struct {
	// World sizes the simulated environment.
	World WorldParams
	// UseTruth bypasses the measurement pipeline (faster, noise-free).
	UseTruth bool
	// Progress, if non-nil, receives campaign deployment progress.
	Progress func(done, total int)
	// Ctx, if non-nil, cancels the campaign deployment early.
	Ctx context.Context
	// Metrics, if non-nil, receives campaign instrumentation (per-phase
	// wall-clock histograms and configuration counters).
	Metrics *metrics.Registry
	// Retry governs per-configuration retry and backoff when campaign
	// deployment or measurement fails transiently. The zero value means
	// no retries (a single attempt, failures fatal) — the pre-fault
	// behaviour.
	Retry RetryPolicy
	// FaultProfile names a fault-injection scenario (see
	// FaultProfileNames); "" or "none" disables injection.
	FaultProfile string
	// FaultSeed seeds the deterministic injector; the same
	// (profile, seed) pair yields the same fault schedule.
	FaultSeed uint64
	// Ledger, if non-nil, records campaign provenance (deployments,
	// retries, degradations, catchment rows, the campaign verdict) and
	// link-quarantine transitions. Nil disables provenance.
	Ledger *ProvenanceLedger
}

// DefaultTrackerParams returns paper-scale tracker parameters.
func DefaultTrackerParams(seed uint64) TrackerParams {
	return TrackerParams{World: core.DefaultWorldParams(seed)}
}

// Tracker is the high-level entry point: it owns a world and a deployed
// default campaign, and answers localization queries against them.
type Tracker struct {
	World    *World
	Plan     []PlannedConfig
	Campaign *Campaign
	// Fault is the active injector, or nil when no fault profile was
	// requested.
	Fault *FaultInjector
}

// NewTracker builds the world, generates the paper's three-phase plan,
// deploys it, and measures catchments. This is the offline preparation
// step an origin AS performs before attacks occur (§V-C).
func NewTracker(p TrackerParams) (*Tracker, error) {
	w, err := core.BuildWorld(p.World)
	if err != nil {
		return nil, err
	}
	plan, err := w.DefaultPlan()
	if err != nil {
		return nil, err
	}
	prof, err := fault.ProfileByName(p.FaultProfile)
	if err != nil {
		return nil, err
	}
	opts := core.CampaignOptions{
		UseTruth: p.UseTruth,
		Progress: p.Progress,
		Ctx:      p.Ctx,
		Metrics:  p.Metrics,
		Retry:    p.Retry,
		Ledger:   p.Ledger,
	}
	if led := p.Ledger; led.Enabled() {
		// Quarantine transitions feed the ledger from the first campaign
		// deployment on — breaker trips during the offline campaign are
		// part of the verdict's evidence chain.
		w.Platform.Health().SetTransitionHook(func(link bgp.LinkID, from, to peering.BreakerState) {
			led.RecordQuarantine(provenance.QuarantineEvent{Link: int(link), From: from.String(), To: to.String()})
		})
	}
	var inj *fault.Injector
	if prof.Name != "" && prof.Name != "none" {
		// Injecting faults without retries would make every transient
		// error fatal; default to the standard policy unless the caller
		// tuned one.
		if opts.Retry.MaxAttempts == 0 {
			opts.Retry = core.DefaultRetryPolicy()
		}
		inj = fault.New(prof, p.FaultSeed, w.Platform.NumLinks())
		if p.Metrics != nil {
			inj.Instrument(p.Metrics)
		}
		w.Platform.SetFaultHook(inj)
		opts.MeasureFault = inj
	}
	camp, err := w.RunCampaign(plan, opts)
	if err != nil {
		return nil, err
	}
	return &Tracker{World: w, Plan: plan, Campaign: camp, Fault: inj}, nil
}

// Clusters returns the final partition of sources after the whole
// campaign.
func (t *Tracker) Clusters() *Partition { return t.Campaign.FinalPartition() }

// Summary returns the final partition metrics (mean cluster size,
// singleton fraction, ...).
func (t *Tracker) Summary() Metrics { return t.Clusters().Summarize() }

// SourceASNs returns the ASNs of the sources under analysis.
func (t *Tracker) SourceASNs() []ASN {
	g := t.World.Graph
	out := make([]ASN, len(t.Campaign.Sources))
	for i, src := range t.Campaign.Sources {
		out[i] = g.ASN(src)
	}
	return out
}

// LocalizationReport is the outcome of correlating measured volumes.
type LocalizationReport struct {
	// CandidateASNs are the networks consistent with the observed
	// per-link traffic across every configuration.
	CandidateASNs []ASN
	// CandidateIndexes are the same candidates as source positions.
	CandidateIndexes []int
}

// LocalizeAttack correlates per-configuration, per-link spoofed-traffic
// volumes (volumes[c][l], as an amplification honeypot would report for
// configuration c) with the campaign's measured catchments, returning
// the candidate source networks (§III-C).
func (t *Tracker) LocalizeAttack(volumes [][]float64) (*LocalizationReport, error) {
	if len(volumes) != t.Campaign.NumConfigs() {
		return nil, fmt.Errorf("spooftrack: %d volume rows for %d configurations",
			len(volumes), t.Campaign.NumConfigs())
	}
	idx := spoof.Localize(t.Campaign.Catchments, volumes)
	rep := &LocalizationReport{CandidateIndexes: idx}
	g := t.World.Graph
	for _, k := range idx {
		rep.CandidateASNs = append(rep.CandidateASNs, g.ASN(t.Campaign.Sources[k]))
	}
	return rep, nil
}

// Evidence builds the operator-facing notification report for an
// attack's measured volumes: per candidate, the volume share its links
// carried, how many configurations corroborate it, and the cluster
// bounding localization precision (§I's "drive adoption of best
// practices" use case).
func (t *Tracker) Evidence(volumes [][]float64) (*EvidenceReport, error) {
	loc, err := t.LocalizeAttack(volumes)
	if err != nil {
		return nil, err
	}
	g := t.World.Graph
	return report.Build(report.Input{
		Sources:          t.Campaign.Sources,
		ASNOf:            g.ASN,
		Catchments:       t.Campaign.Catchments,
		Volumes:          volumes,
		Partition:        t.Clusters(),
		CandidateIndexes: loc.CandidateIndexes,
	})
}

// SimulateAttack produces the per-configuration link volumes a honeypot
// would measure if the given placement of spoofing hosts attacked while
// each campaign configuration was deployed. Useful for evaluation and
// examples; a real deployment gets these volumes from its honeypot.
func (t *Tracker) SimulateAttack(p Placement) [][]float64 {
	numLinks := t.World.Platform.NumLinks()
	out := make([][]float64, len(t.Campaign.Catchments))
	for c, catchment := range t.Campaign.Catchments {
		out[c] = spoof.LinkVolumes(catchment, p, numLinks)
	}
	return out
}

// PlaceSingleSource returns a placement with one attacking source,
// chosen uniformly.
func (t *Tracker) PlaceSingleSource(rng *RNG) Placement {
	return spoof.PlaceSingle(rng, t.Campaign.NumSources())
}

// PlaceUniformSources places nBots uniformly across sources.
func (t *Tracker) PlaceUniformSources(rng *RNG, nBots int) Placement {
	return spoof.PlaceUniform(rng, t.Campaign.NumSources(), nBots)
}

// PlaceParetoSources places nBots with Pareto 80/20 concentration.
func (t *Tracker) PlaceParetoSources(rng *RNG, nBots int) Placement {
	return spoof.PlacePareto(rng, t.Campaign.NumSources(), nBots)
}
